type kind = Document | Element | Attribute | Text | Comment | Pi

type t = { key : Flex.t; kind : kind; name : string; value : string }

let kind_to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "pi"

let pp ppf r =
  Format.fprintf ppf "[%a %s%s%s]" Flex.pp r.key (kind_to_string r.kind)
    (if r.name = "" then "" else " " ^ r.name)
    (if r.value = "" then "" else Printf.sprintf " %S" r.value)

(* The axis membership (e.g. that the child axis never yields attribute
   records) is enforced by the cursors; this checks the node test only. *)
let matches_test ~principal test r =
  match test with
  | Xpath.Ast.Name_test n -> r.kind = principal && String.equal r.name n
  | Xpath.Ast.Wildcard -> r.kind = principal
  | Xpath.Ast.Text_test -> r.kind = Text
  | Xpath.Ast.Comment_test -> r.kind = Comment
  | Xpath.Ast.Node_test -> true
  | Xpath.Ast.Pi_test None -> r.kind = Pi
  | Xpath.Ast.Pi_test (Some target) -> r.kind = Pi && String.equal r.name target
