(** Node records stored in the MASS clustered document index. *)

type kind =
  | Document  (** per-document root record *)
  | Element
  | Attribute
  | Text
  | Comment
  | Pi

type t = {
  key : Flex.t;
  kind : kind;
  name : string;  (** element/attribute name, PI target, document name; [""] otherwise *)
  value : string;  (** attribute value, text content, comment text, PI data; [""] otherwise *)
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

val matches_test : principal:kind -> Xpath.Ast.node_test -> t -> bool
(** XPath node-test semantics: [Name_test]/[Wildcard] select nodes of the
    axis' principal kind ([Element] for all axes except [attribute], whose
    principal kind is [Attribute]); [text()], [comment()],
    [processing-instruction()] select by kind; [node()] selects any
    non-attribute node (or any attribute on the attribute axis). *)
