lib/mass/record.ml: Flex Format Printf String Xpath
