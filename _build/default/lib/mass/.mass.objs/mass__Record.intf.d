lib/mass/record.mli: Flex Format Xpath
