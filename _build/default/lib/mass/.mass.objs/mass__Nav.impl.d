lib/mass/nav.ml: Flex List Record Store Xpath
