lib/mass/store.ml: Array Btree Buffer Char Flex Format Hashtbl Int64 List Option Printf Record Storage String Xml Xpath
