lib/mass/store.mli: Flex Record Storage Xml Xpath
