lib/mass/nav.mli: Flex Store Xpath
