(** MASS-backed node space: the index-navigation instantiation of the
    generic XPath evaluator.

    Used by the engine for general predicate expressions (the fallback
    when a predicate is outside the physical algebra's specialized forms)
    and by tests as the navigational reference. *)

module Space :
  Xpath.Eval.NODE_SPACE with type t = Store.t and type node = Flex.t

module E : module type of Xpath.Eval.Make (Space)

val collect : Store.cursor -> Flex.t list
(** Drain a cursor into a list. *)
