module Store = Mass.Store
module E = Mass.Nav.E
open Xpath

type value = Flex.t Xpath.Eval.value

type item =
  | Nodes of Flex.t list
  | Atomic of string
  | Constructed of Xml.Tree.spec

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ---- surface syntax ----

   The FLWOR shell is scanned at character level; embedded expressions are
   handed to the XPath parser.  Clause keywords must appear as standalone
   words at bracket depth 0 outside string literals. *)

type clause =
  | For of string * Ast.expr
  | Let of string * Ast.expr
  | Where of Ast.expr
  | Order_by of Ast.expr * bool (* descending *)

type constructor =
  | Element of string * (string * string) list * content list
  | Splice of Ast.expr

and content = Text of string | Embedded of Ast.expr | Child of constructor

type query = { clauses : clause list; return : constructor }

let keywords = [ "for"; "let"; "where"; "order"; "return"; "descending" ]

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

type scanner = { src : string; mutable pos : int }

let skip_ws sc =
  while
    sc.pos < String.length sc.src
    && (match sc.src.[sc.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    sc.pos <- sc.pos + 1
  done

let looking_at_word sc word =
  let n = String.length word in
  sc.pos + n <= String.length sc.src
  && String.sub sc.src sc.pos n = word
  && (sc.pos + n = String.length sc.src || not (is_word_char sc.src.[sc.pos + n]))
  && (sc.pos = 0 || not (is_word_char sc.src.[sc.pos - 1]))

let expect_word sc word =
  skip_ws sc;
  if looking_at_word sc word then sc.pos <- sc.pos + String.length word
  else error "expected '%s' at offset %d" word sc.pos

let parse_varname sc =
  skip_ws sc;
  if sc.pos >= String.length sc.src || sc.src.[sc.pos] <> '$' then
    error "expected a variable at offset %d" sc.pos;
  sc.pos <- sc.pos + 1;
  let start = sc.pos in
  while sc.pos < String.length sc.src && is_word_char sc.src.[sc.pos] do
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then error "empty variable name at offset %d" start;
  String.sub sc.src start (sc.pos - start)

(* the expression text extends to the next top-level clause keyword *)
let scan_expr_text sc =
  skip_ws sc;
  let start = sc.pos in
  let depth = ref 0 in
  let quote = ref None in
  let stop = ref None in
  while !stop = None && sc.pos < String.length sc.src do
    let c = sc.src.[sc.pos] in
    (match !quote with
    | Some q -> if c = q then quote := None
    | None -> (
        match c with
        | '\'' | '"' -> quote := Some c
        | '(' | '[' -> incr depth
        | ')' | ']' -> decr depth
        | ',' -> if !depth = 0 then stop := Some sc.pos
        | _ ->
            if !depth = 0 && List.exists (looking_at_word sc) keywords then stop := Some sc.pos));
    if !stop = None then sc.pos <- sc.pos + 1
  done;
  let fin = match !stop with Some p -> p | None -> sc.pos in
  let text = String.trim (String.sub sc.src start (fin - start)) in
  if text = "" then error "empty expression at offset %d" start;
  text

let parse_xpath text =
  match Parser.parse text with
  | e -> e
  | exception (Parser.Error _ as exn) ->
      error "in %S: %s" text (Option.value ~default:"parse error" (Parser.error_to_string exn))

(* ---- element constructors ---- *)

let parse_name sc =
  let start = sc.pos in
  while sc.pos < String.length sc.src && is_word_char sc.src.[sc.pos] do
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then error "expected a name at offset %d" start;
  String.sub sc.src start (sc.pos - start)

(* a braced expression, tracking nesting and quotes *)
let scan_braced sc =
  (* sc.pos is at '{' *)
  sc.pos <- sc.pos + 1;
  let start = sc.pos in
  let depth = ref 1 in
  let quote = ref None in
  while !depth > 0 do
    if sc.pos >= String.length sc.src then error "unterminated '{' at offset %d" (start - 1);
    let c = sc.src.[sc.pos] in
    (match !quote with
    | Some q -> if c = q then quote := None
    | None -> (
        match c with
        | '\'' | '"' -> quote := Some c
        | '{' -> incr depth
        | '}' -> decr depth
        | _ -> ()));
    sc.pos <- sc.pos + 1
  done;
  String.trim (String.sub sc.src start (sc.pos - 1 - start))

let rec parse_constructor sc =
  skip_ws sc;
  if sc.pos < String.length sc.src && sc.src.[sc.pos] = '<' then begin
    sc.pos <- sc.pos + 1;
    let name = parse_name sc in
    (* static attributes: name="value" *)
    let rec attrs acc =
      skip_ws sc;
      if sc.pos < String.length sc.src && sc.src.[sc.pos] = '>' then begin
        sc.pos <- sc.pos + 1;
        List.rev acc
      end
      else if sc.pos + 1 < String.length sc.src && String.sub sc.src sc.pos 2 = "/>" then begin
        sc.pos <- sc.pos + 2;
        raise Exit (* signal empty element via exception to the caller below *)
      end
      else begin
        let an = parse_name sc in
        skip_ws sc;
        if sc.pos >= String.length sc.src || sc.src.[sc.pos] <> '=' then
          error "expected '=' in attribute at offset %d" sc.pos;
        sc.pos <- sc.pos + 1;
        skip_ws sc;
        let q = sc.src.[sc.pos] in
        if q <> '"' && q <> '\'' then error "expected a quoted attribute value at offset %d" sc.pos;
        sc.pos <- sc.pos + 1;
        let start = sc.pos in
        while sc.pos < String.length sc.src && sc.src.[sc.pos] <> q do
          sc.pos <- sc.pos + 1
        done;
        if sc.pos >= String.length sc.src then error "unterminated attribute value";
        let av = String.sub sc.src start (sc.pos - start) in
        sc.pos <- sc.pos + 1;
        attrs ((an, av) :: acc)
      end
    in
    match attrs [] with
    | exception Exit -> Element (name, [], [])
    | attributes ->
        let rec contents acc =
          if sc.pos >= String.length sc.src then error "unterminated element <%s>" name
          else if sc.pos + 1 < String.length sc.src && String.sub sc.src sc.pos 2 = "</" then begin
            sc.pos <- sc.pos + 2;
            let closing = parse_name sc in
            if closing <> name then error "mismatched </%s>, expected </%s>" closing name;
            skip_ws sc;
            if sc.pos >= String.length sc.src || sc.src.[sc.pos] <> '>' then
              error "expected '>' after </%s" closing;
            sc.pos <- sc.pos + 1;
            List.rev acc
          end
          else if sc.src.[sc.pos] = '{' then begin
            let text = scan_braced sc in
            contents (Embedded (parse_xpath text) :: acc)
          end
          else if sc.src.[sc.pos] = '<' then contents (Child (parse_constructor sc) :: acc)
          else begin
            let start = sc.pos in
            while
              sc.pos < String.length sc.src
              && sc.src.[sc.pos] <> '<'
              && sc.src.[sc.pos] <> '{'
            do
              sc.pos <- sc.pos + 1
            done;
            let text = String.sub sc.src start (sc.pos - start) in
            if String.trim text = "" then contents acc else contents (Text text :: acc)
          end
        in
        Element (name, attributes, contents [])
  end
  else begin
    (* a bare expression return *)
    let rest = String.trim (String.sub sc.src sc.pos (String.length sc.src - sc.pos)) in
    sc.pos <- String.length sc.src;
    Splice (parse_xpath rest)
  end

(* ---- FLWOR parsing ---- *)

let parse_query src =
  let sc = { src; pos = 0 } in
  skip_ws sc;
  if not (looking_at_word sc "for" || looking_at_word sc "let") then
    { clauses = []; return = Splice (parse_xpath (String.trim src)) }
  else begin
    let clauses = ref [] in
    let rec loop () =
      skip_ws sc;
      if looking_at_word sc "for" then begin
        expect_word sc "for";
        let rec vars () =
          let v = parse_varname sc in
          expect_word sc "in";
          let e = parse_xpath (scan_expr_text sc) in
          clauses := For (v, e) :: !clauses;
          skip_ws sc;
          if sc.pos < String.length sc.src && sc.src.[sc.pos] = ',' then begin
            sc.pos <- sc.pos + 1;
            vars ()
          end
        in
        vars ();
        loop ()
      end
      else if looking_at_word sc "let" then begin
        expect_word sc "let";
        let v = parse_varname sc in
        skip_ws sc;
        if sc.pos + 1 < String.length sc.src && String.sub sc.src sc.pos 2 = ":=" then
          sc.pos <- sc.pos + 2
        else error "expected ':=' at offset %d" sc.pos;
        let e = parse_xpath (scan_expr_text sc) in
        clauses := Let (v, e) :: !clauses;
        loop ()
      end
      else if looking_at_word sc "where" then begin
        expect_word sc "where";
        let e = parse_xpath (scan_expr_text sc) in
        clauses := Where e :: !clauses;
        loop ()
      end
      else if looking_at_word sc "order" then begin
        expect_word sc "order";
        expect_word sc "by";
        let e = parse_xpath (scan_expr_text sc) in
        skip_ws sc;
        let descending =
          if looking_at_word sc "descending" then begin
            expect_word sc "descending";
            true
          end
          else false
        in
        clauses := Order_by (e, descending) :: !clauses;
        loop ()
      end
      else if looking_at_word sc "return" then begin
        expect_word sc "return";
        let c = parse_constructor sc in
        skip_ws sc;
        if sc.pos < String.length sc.src then
          error "trailing input at offset %d" sc.pos;
        { clauses = List.rev !clauses; return = c }
      end
      else error "expected a clause keyword at offset %d" sc.pos
    in
    loop ()
  end

let parse src = ignore (parse_query src)

(* ---- evaluation ---- *)

type env = (string * value) list

let eval_expr store ~context (env : env) e =
  let vars v = List.assoc_opt v env in
  match E.eval ~vars store ~context e with
  | v -> v
  | exception Xpath.Eval.Unsupported msg -> error "%s" msg

(* For-clause paths rooted in a variable are the paper's XQuery
   integration point: the relative path compiles to one optimized VAMANA
   plan whose leaf is re-rooted at every binding (§V-B dynamic context
   setting, driven from the enclosing expression). *)
type for_source =
  | Plan_rooted_at of string * Vamana.Exec.iterator
  | General of Ast.expr

type prepared = PFor of string * for_source | PLet of string * Ast.expr | PWhere of Ast.expr

let prepare_for_source store ~context e =
  match e with
  | Ast.Located (Ast.Var v, rel) when List.for_all (fun (s : Ast.step) -> s.Ast.predicates = []) rel.Ast.steps
    -> (
      match Vamana.Compile.compile_query (Ast.path_to_string { rel with Ast.absolute = false }) with
      | Ok plan ->
          let scope = if Flex.depth context = 0 then None else Some (Flex.prefix context 1) in
          let optimized = (Vamana.Optimizer.optimize store ~scope plan).Vamana.Optimizer.plan in
          Plan_rooted_at (v, Vamana.Exec.build store ~context optimized)
      | Error _ -> General e)
  | _ -> General e

let nodes_of store = function
  | Xpath.Eval.Nodes ns -> ns
  | v -> error "for-clause expression is not a node-set (%s)" (E.to_string_value store v)

(* plans and iterators are built once; bindings re-root them *)
let prepare_clauses store ~context clauses =
  List.filter_map
    (fun clause ->
      match clause with
      | For (v, e) -> Some (PFor (v, prepare_for_source store ~context e))
      | Let (v, e) -> Some (PLet (v, e))
      | Where e -> Some (PWhere e)
      | Order_by _ -> None)
    clauses

let rec eval_clauses store ~context clauses (env : env) (emit : env -> unit) =
  match clauses with
  | [] -> emit env
  | PFor (v, source) :: rest -> (
      match source with
      | Plan_rooted_at (var, it) ->
          let root =
            match List.assoc_opt var env with
            | Some (Xpath.Eval.Nodes [ n ]) -> n
            | Some _ -> error "variable $%s is not a single node" var
            | None -> error "unbound variable $%s" var
          in
          Vamana.Exec.reset it root;
          let rec drain () =
            match Vamana.Exec.next it with
            | Some k ->
                eval_clauses store ~context rest ((v, Xpath.Eval.Nodes [ k ]) :: env) emit;
                drain ()
            | None -> ()
          in
          drain ()
      | General e ->
          List.iter
            (fun n ->
              eval_clauses store ~context rest ((v, Xpath.Eval.Nodes [ n ]) :: env) emit)
            (nodes_of store (eval_expr store ~context env e)))
  | PLet (v, e) :: rest ->
      eval_clauses store ~context rest ((v, eval_expr store ~context env e) :: env) emit
  | PWhere e :: rest ->
      if E.to_boolean store (eval_expr store ~context env e) then
        eval_clauses store ~context rest env emit

let order_spec clauses =
  List.find_map (function Order_by (e, desc) -> Some (e, desc) | _ -> None) clauses

let rec build_constructor store ~context env c : Xml.Tree.spec =
  match c with
  | Element (name, attrs, contents) ->
      let children =
        List.concat_map
          (fun content ->
            match content with
            | Text s -> [ Xml.Tree.D s ]
            | Child c -> [ build_constructor store ~context env c ]
            | Embedded e -> splice store (eval_expr store ~context env e))
          contents
      in
      Xml.Tree.E (name, attrs, children)
  | Splice _ -> error "internal: splice at element position"

and splice store (v : value) : Xml.Tree.spec list =
  match v with
  | Xpath.Eval.Nodes ns ->
      List.concat_map
        (fun k ->
          match Store.get store k with
          | Some { Mass.Record.kind = Mass.Record.Element | Mass.Record.Document; _ } -> (
              match Store.to_tree store k with
              | Some tree -> [ Xml.Tree.element_spec tree ]
              | None -> [])
          | Some r -> [ Xml.Tree.D r.Mass.Record.value ]
          | None -> [])
        ns
  | other -> [ Xml.Tree.D (E.to_string_value store other) ]

let run store ~context src =
  let q = parse_query src in
  let prepared = prepare_clauses store ~context q.clauses in
  let tuples = ref [] in
  eval_clauses store ~context prepared [] (fun env -> tuples := env :: !tuples);
  let tuples = List.rev !tuples in
  let tuples =
    match order_spec q.clauses with
    | None -> tuples
    | Some (key_expr, descending) ->
        let keyed =
          List.map (fun env -> (E.to_string_value store (eval_expr store ~context env key_expr), env)) tuples
        in
        let sorted = List.stable_sort (fun (a, _) (b, _) -> String.compare a b) keyed in
        let sorted = if descending then List.rev sorted else sorted in
        List.map snd sorted
  in
  List.map
    (fun env ->
      match q.return with
      | Splice e -> (
          match eval_expr store ~context env e with
          | Xpath.Eval.Nodes ns -> Nodes ns
          | other -> Atomic (E.to_string_value store other))
      | Element _ as c -> Constructed (build_constructor store ~context env c))
    tuples

let run_to_xml store ~context src =
  let items = run store ~context src in
  let render = function
    | Atomic s -> s
    | Nodes ns ->
        String.concat "\n"
          (List.filter_map (fun k -> Store.to_xml store k) ns)
    | Constructed spec -> (
        match Xml.Tree.document [ spec ] with
        | doc -> Xml.Writer.to_string (Xml.Tree.root_element doc)
        | exception Invalid_argument _ -> "")
  in
  String.concat "\n" (List.map render items)
