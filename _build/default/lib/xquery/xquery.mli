(** XQuery-lite: a FLWOR subset over the VAMANA engine.

    The paper positions VAMANA as the XPath substrate of an XQuery
    processor: "in an XQuery expression the leaf operator could receive
    context nodes from another expression" (§V-B) and "for an XQuery
    expression that typically contains multiple XPath expressions, the
    context node could be provided from another XPath expression" (§VII).
    This module realizes that composition: each [for] clause compiles its
    path to one optimized VAMANA plan whose leaf is then {e re-rooted at
    every binding} of the enclosing clauses — the engine's dynamic context
    setting, driven from above.

    Supported grammar (a practical FLWOR core):

    {v
    query   ::= flwor | Expr
    flwor   ::= (ForClause | LetClause)+ ("where" Expr)?
                ("order" "by" Expr ("descending")?)? "return" constructor
    ForClause ::= "for" "$"name "in" Expr
    LetClause ::= "let" "$"name ":=" Expr
    constructor ::= "<"name">" (text | "{" Expr "}" | constructor)* "</"name">"
                  | Expr
    v}

    where [Expr] is any XPath 1.0 expression, with [$name] variables
    resolving to the FLWOR bindings. *)

type value = Flex.t Xpath.Eval.value

type item =
  | Nodes of Flex.t list  (** a node-set result *)
  | Atomic of string  (** an atomic value, rendered as a string *)
  | Constructed of Xml.Tree.spec  (** an element built by a constructor *)

exception Error of string

val parse : string -> unit
(** Validate a query's syntax. @raise Error on malformed input. *)

val run : Mass.Store.t -> context:Flex.t -> string -> item list
(** Evaluate a query; one item per [return] evaluation (per binding tuple
    for FLWOR queries, exactly one for plain expressions).
    @raise Error on syntax or evaluation failure. *)

val run_to_xml : Mass.Store.t -> context:Flex.t -> string -> string
(** Evaluate and serialize: constructed elements as markup, node-sets as
    their subtree markup, atomics as text; items separated by newlines. *)
