type t = {
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable page_writes : int;
  mutable evictions : int;
  mutable allocations : int;
}

let create () =
  { logical_reads = 0; physical_reads = 0; page_writes = 0; evictions = 0; allocations = 0 }

let reset t =
  t.logical_reads <- 0;
  t.physical_reads <- 0;
  t.page_writes <- 0;
  t.evictions <- 0;
  t.allocations <- 0

let copy t =
  {
    logical_reads = t.logical_reads;
    physical_reads = t.physical_reads;
    page_writes = t.page_writes;
    evictions = t.evictions;
    allocations = t.allocations;
  }

let diff later earlier =
  {
    logical_reads = later.logical_reads - earlier.logical_reads;
    physical_reads = later.physical_reads - earlier.physical_reads;
    page_writes = later.page_writes - earlier.page_writes;
    evictions = later.evictions - earlier.evictions;
    allocations = later.allocations - earlier.allocations;
  }

let hit_ratio t =
  if t.logical_reads = 0 then 1.0
  else 1.0 -. (float_of_int t.physical_reads /. float_of_int t.logical_reads)

let pp ppf t =
  Format.fprintf ppf
    "{ logical=%d physical=%d writes=%d evictions=%d allocs=%d hit=%.3f }"
    t.logical_reads t.physical_reads t.page_writes t.evictions t.allocations (hit_ratio t)
