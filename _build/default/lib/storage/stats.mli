(** I/O statistics counters for the simulated paged storage.

    The reproduction runs on a simulated disk (everything is resident in
    process memory), so wall-clock time alone would understate the I/O
    behaviour the paper's figures depend on.  These counters make page
    traffic observable: a {e logical read} is any page access, a
    {e physical read} is an access to a page not currently resident in
    the buffer pool. *)

type t = {
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable page_writes : int;  (** dirty pages written back on eviction/flush *)
  mutable evictions : int;
  mutable allocations : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier] — counter deltas between two snapshots. *)

val hit_ratio : t -> float
(** Buffer-pool hit ratio in [0,1]; [1.0] when there were no reads. *)

val pp : Format.formatter -> t -> unit
