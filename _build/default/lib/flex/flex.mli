(** FLEX — Fast Lexicographical Keys.

    Structural encoding of XML nodes as used by the MASS storage structure
    (Deschler & Rundensteiner, CIKM 2003).  A key is a sequence of
    {e components}; each component is a non-empty string over ['a'..'z']
    that never ends in ['a'].  The no-trailing-['a'] invariant guarantees
    that a strictly-between component always exists, so nodes can be
    inserted between any two siblings without relabeling the document.

    Lexicographic comparison of keys (component-wise, with a proper prefix
    ordered before its extensions) coincides with document pre-order, and
    the descendants of a node are exactly the keys having its key as a
    proper prefix.  Both properties are what make index-only XPath plans
    possible: every axis becomes a contiguous range or a simple key
    transformation. *)

type t
(** A FLEX key.  The empty key denotes the document node, the ancestor of
    every node in its document. *)

val document : t
(** The key of the document node (empty component sequence). *)

val of_components : string list -> t
(** [of_components cs] builds a key from components.
    @raise Invalid_argument if any component is invalid. *)

val components : t -> string list
(** Components of the key, outermost first. *)

val depth : t -> int
(** Number of components.  [depth document = 0]; children of the document
    node have depth 1. *)

val is_valid_component : string -> bool
(** A valid component is non-empty, uses only ['a'..'z'], and does not end
    in ['a']. *)

val child : t -> string -> t
(** [child k c] appends component [c] to [k].
    @raise Invalid_argument if [c] is invalid. *)

val parent : t -> t option
(** Key of the parent node; [None] for the document node. *)

val last_component : t -> string option
(** The final component; [None] for the document node. *)

val prefix : t -> int -> t
(** [prefix k d] is the ancestor of [k] at depth [d].
    @raise Invalid_argument if [d < 0] or [d > depth k]. *)

val compare : t -> t -> int
(** Total order equal to document pre-order. *)

val equal : t -> t -> bool

val is_ancestor : t -> t -> bool
(** [is_ancestor a k] — [a] is a {e proper} ancestor of [k]. *)

val is_ancestor_or_self : t -> t -> bool

val common_ancestor : t -> t -> t
(** Longest common prefix of two keys. *)

(** {1 Component generation} *)

val between : string option -> string option -> string
(** [between lo hi] is a fresh valid component strictly between [lo] and
    [hi] ([None] meaning unbounded).  Used for ordered insertion between
    existing siblings.
    @raise Invalid_argument if [lo >= hi]. *)

val sequence : int -> string list
(** [sequence n] generates [n] valid components in strictly increasing
    order, all of the same (minimal) width.  Used for bulk loading where
    the sibling count is known. *)

val first_child_component : string
(** Default component for the first child inserted under a node. *)

(** {1 Range bounds}

    Bounds position B-tree seeks either just before a key or just after an
    entire subtree, which lets axis cursors skip whole subtrees in one
    seek. *)

type bound =
  | Min  (** before every key *)
  | Before of t  (** the position of [t] itself *)
  | After_key of t  (** just past [t], before its descendants *)
  | After_subtree of t  (** just past [t] and all its descendants *)
  | Max  (** after every key *)

val bound_compare_key : bound -> t -> int
(** [bound_compare_key b k] is [< 0] if the bound lies before [k],
    [0] never (bounds fall between keys; [Before t] compares [<= 0] to [t]
    itself via [-1]... more precisely: [< 0] iff a cursor seeked to [b]
    would yield [k] or a later key), and [> 0] if the bound lies after
    [k].  Concretely: [Before t] is [<= k] iff [compare t k <= 0];
    [After_subtree t] is [<= k] iff [k] is neither [t] nor a descendant
    of [t] and [compare t k < 0]. *)

val key_in_range : lo:bound -> hi:bound -> t -> bool
(** [key_in_range ~lo ~hi k] — [k] lies at or after [lo] and strictly
    before [hi]. *)

val subtree_range : t -> bound * bound
(** Half-open range covering a node and all its descendants. *)

val descendants_range : t -> bound * bound
(** Half-open range covering the proper descendants of a node. *)

(** {1 Serialization} *)

val to_string : t -> string
(** Dotted display form, e.g. ["b.d.y.c"]; the document node prints as
    ["/"] . *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on malformed input. *)

val encode : t -> string
(** Order-preserving byte encoding: [String.compare (encode a) (encode b)]
    equals [compare a b].  Components are joined with byte [0x01], which
    sorts below every component character. *)

val decode : string -> t
(** Inverse of {!encode}. @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
