type t = string array
(* Invariant: every element satisfies [is_valid_component]. *)

let alphabet_base = 26
let code c = Char.code c - Char.code 'a'
let chr d = Char.chr (d + Char.code 'a')

let is_valid_component s =
  let n = String.length s in
  n > 0
  && s.[n - 1] <> 'a'
  &&
  let ok = ref true in
  String.iter (fun c -> if c < 'a' || c > 'z' then ok := false) s;
  !ok

let check_component s =
  if not (is_valid_component s) then
    invalid_arg (Printf.sprintf "Flex: invalid component %S" s)

let document : t = [||]
let of_components cs =
  List.iter check_component cs;
  Array.of_list cs

let components k = Array.to_list k
let depth = Array.length

let child k c =
  check_component c;
  Array.append k [| c |]

let parent k =
  if Array.length k = 0 then None else Some (Array.sub k 0 (Array.length k - 1))

let last_component k =
  if Array.length k = 0 then None else Some k.(Array.length k - 1)

let prefix k d =
  if d < 0 || d > Array.length k then invalid_arg "Flex.prefix: bad depth";
  Array.sub k 0 d

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = String.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let is_ancestor a k =
  let la = Array.length a and lk = Array.length k in
  la < lk
  &&
  let rec go i = i >= la || (String.equal a.(i) k.(i) && go (i + 1)) in
  go 0

let is_ancestor_or_self a k = equal a k || is_ancestor a k

let common_ancestor a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = if i < n && String.equal a.(i) b.(i) then go (i + 1) else i in
  Array.sub a 0 (go 0)

(* Midpoint of two component strings, treated as base-26 fractions over
   digits 'a'(=0) .. 'z'(=25).  The no-trailing-'a' invariant on inputs
   guarantees that a strict midpoint exists whenever [lo < hi]; the
   algorithm below (standard fractional indexing) also never produces a
   trailing 'a'. *)
let between lo hi =
  (match lo, hi with
  | Some a, _ -> check_component a
  | None, _ -> ());
  (match hi with Some b -> check_component b | None -> ());
  (match lo, hi with
  | Some a, Some b when String.compare a b >= 0 ->
      invalid_arg (Printf.sprintf "Flex.between: %S >= %S" a b)
  | _ -> ());
  let buf = Buffer.create 8 in
  (* [mid a b]: append to [buf] digits of a string strictly between [a]
     (or -inf when [a] exhausted at position 0 with [ia >= len]) and [b]
     (+inf when [b = None]). *)
  let rec mid a ia b ib =
    let digit_a = if ia < String.length a then code a.[ia] else 0 in
    let digit_b =
      match b with
      | Some b when ib < String.length b -> code b.[ib]
      | Some _ -> alphabet_base (* past end of b: unreachable when a < b *)
      | None -> alphabet_base
    in
    if digit_a = digit_b then begin
      (* common digit: copy and recurse *)
      Buffer.add_char buf (chr digit_a);
      mid a (ia + 1) b (ib + 1)
    end
    else if digit_b - digit_a > 1 then
      (* room for a digit strictly in between; never 'a' since mid > 0 *)
      Buffer.add_char buf (chr ((digit_a + digit_b + 1) / 2))
    else begin
      (* consecutive digits *)
      match b with
      | Some bs when ib + 1 < String.length bs ->
          (* b continues past this digit, so the proper prefix of b ending
             here is strictly between a and b (its last digit is >= 'b'
             because digit_b > digit_a >= 0) *)
          Buffer.add_char buf (chr digit_b)
      | _ ->
          (* descend along a with +inf upper bound *)
          Buffer.add_char buf (chr digit_a);
          mid a (ia + 1) None 0
    end
  in
  let a = match lo with Some a -> a | None -> "" in
  mid a 0 hi 0;
  let r = Buffer.contents buf in
  assert (is_valid_component r);
  r

let first_child_component = "n"

(* [sequence n] enumerates [n] components of equal width over the 25
   digits 'b'..'z' (avoiding 'a' entirely keeps the invariant and equal
   widths keep the order lexicographic). *)
let sequence n =
  if n < 0 then invalid_arg "Flex.sequence: negative count";
  if n = 0 then []
  else begin
    let digits = 25 in
    let width =
      let rec go w cap = if cap >= n then w else go (w + 1) (cap * digits) in
      go 1 digits
    in
    let component i =
      let b = Bytes.make width 'b' in
      let rec fill pos i =
        if pos >= 0 then begin
          Bytes.set b pos (Char.chr (Char.code 'b' + (i mod digits)));
          fill (pos - 1) (i / digits)
        end
      in
      fill (width - 1) i;
      Bytes.to_string b
    in
    List.init n component
  end

type bound = Min | Before of t | After_key of t | After_subtree of t | Max

let bound_compare_key b k =
  match b with
  | Min -> -1
  | Max -> 1
  | Before t -> if compare t k <= 0 then -1 else 1
  | After_key t -> if compare t k < 0 then -1 else 1
  | After_subtree t -> if compare t k < 0 && not (is_ancestor t k) then -1 else 1

let key_in_range ~lo ~hi k = bound_compare_key lo k < 0 && bound_compare_key hi k > 0
let subtree_range k = (Before k, After_subtree k)
let descendants_range k = (After_key k, After_subtree k)

let pp_sep = '.'

let to_string k =
  if Array.length k = 0 then "/" else String.concat "." (Array.to_list k)

let of_string s =
  if String.equal s "/" then document
  else of_components (String.split_on_char pp_sep s)

let encode k = String.concat "\x01" (Array.to_list k)

let decode s =
  if String.length s = 0 then document
  else of_components (String.split_on_char '\x01' s)

let pp ppf k = Format.pp_print_string ppf (to_string k)
