(* XQuery-lite over VAMANA: build an XML report from the auction site.

   Demonstrates the paper's XQuery integration point (§V-B, §VII): each
   for-clause path compiles to one optimized VAMANA plan whose leaf is
   re-rooted at every binding of the enclosing clause.

     dune exec examples/xquery_report.exe -- [megabytes] *)

module Store = Mass.Store

let () =
  let megabytes =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.5
  in
  let store = Store.create () in
  let doc = Xmark.load store megabytes in
  let ctx = doc.Store.doc_key in
  let show title query =
    Printf.printf "=== %s ===\n%s\n\n%!" title query;
    match Xquery.run_to_xml store ~context:ctx query with
    | xml ->
        let lines = String.split_on_char '\n' xml in
        let shown = List.filteri (fun i _ -> i < 8) lines in
        List.iter print_endline shown;
        if List.length lines > 8 then Printf.printf "... (%d more)\n" (List.length lines - 8);
        print_newline ()
    | exception Xquery.Error msg -> Printf.printf "error: %s\n\n" msg
  in

  show "Vermont residents, as a report"
    "for $p in //person where $p/address/province = 'Vermont' \
     return <resident><who>{$p/name/text()}</who><city>{$p/address/city/text()}</city></resident>";

  show "People and how many auctions they watch, busiest first"
    "for $p in //person where count($p/watches/watch) > 2 \
     order by count($p/watches/watch) descending \
     return <watcher n=\"many\"><name>{$p/name/text()}</name><watching>{count($p/watches/watch)}</watching></watcher>";

  show "Join: open auctions with their item names"
    "for $a in //open_auction, $i in //item \
     where $a/itemref/@item = $i/@id and $a/current > 350 \
     return <hot><item>{$i/name/text()}</item><price>{$a/current/text()}</price></hot>";

  show "Aggregate with let"
    "let $total := count(//person) \
     let $withaddr := count(//person[address]) \
     return <coverage><people>{$total}</people><addressed>{$withaddr}</addressed></coverage>"
