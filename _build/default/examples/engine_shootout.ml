(* Engine shootout: one query, four evaluation strategies.

   Runs the same XPath query through VAMANA's index pipeline, the
   DOM-traversal baseline, the sequential-scan baseline and the
   structural-join baseline, verifying they return the same node set and
   reporting time and page I/O — a miniature of the paper's §VIII.

     dune exec examples/engine_shootout.exe -- [megabytes] [query] *)

module Store = Mass.Store

let () =
  let megabytes =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 1.0
  in
  let query =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "//person/address"
  in
  let store = Store.create ~pool_pages:8192 () in
  let tree = Xmark.generate megabytes in
  let doc = Store.load store ~name:"auction.xml" tree in
  Printf.printf "Document: %.1f MB scale (%d records)\nQuery: %s\n\n" megabytes
    (Store.total_records store) query;

  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let show name result seconds reads =
    match result with
    | Ok ranks ->
        Printf.printf "%-22s %6d results  %9.2f ms%s\n" name (List.length ranks)
          (seconds *. 1000.)
          (match reads with Some n -> Printf.sprintf "  %8d page reads" n | None -> "")
    | Error e -> Printf.printf "%-22s failed: %s\n" name e
  in

  Store.reset_io_stats store;
  let vqp, t_vqp =
    time (fun () ->
        Result.map
          (fun (r : Vamana.Engine.result) -> List.map (Store.document_rank store) r.Vamana.Engine.keys)
          (Vamana.Engine.query ~optimize:false store ~context:doc.Store.doc_key query))
  in
  let vqp_reads = (Store.io_stats store).Storage.Stats.logical_reads in
  show "VAMANA (default plan)" vqp t_vqp (Some vqp_reads);

  Store.reset_io_stats store;
  let opt, t_opt =
    time (fun () ->
        Result.map
          (fun (r : Vamana.Engine.result) -> List.map (Store.document_rank store) r.Vamana.Engine.keys)
          (Vamana.Engine.query ~optimize:true store ~context:doc.Store.doc_key query))
  in
  let opt_reads = (Store.io_stats store).Storage.Stats.logical_reads in
  show "VAMANA (optimized)" opt t_opt (Some opt_reads);

  (* the DOM engine pays parse + build per query, as a file-based engine does *)
  let source = Xml.Writer.to_string tree in
  let dom, t_dom =
    time (fun () ->
        let d = Baselines.Dom_engine.create (Xml.Parser.parse source) in
        Baselines.Dom_engine.query_ranks d query)
  in
  show "DOM traversal" dom t_dom None;

  Store.reset_io_stats store;
  let scan, t_scan =
    time (fun () -> Baselines.Scan_engine.query_ranks (Baselines.Scan_engine.create store doc) query)
  in
  let scan_reads = (Store.io_stats store).Storage.Stats.logical_reads in
  show "Sequential scan" scan t_scan (Some scan_reads);

  Store.reset_io_stats store;
  let join, t_join =
    time (fun () ->
        match Baselines.Join_engine.create store doc with
        | j -> Baselines.Join_engine.query_ranks j query
        | exception Baselines.Join_engine.Document_too_large _ -> Error "document too large")
  in
  let join_reads = (Store.io_stats store).Storage.Stats.logical_reads in
  show "Structural join" join t_join (Some join_reads);

  (* agreement check across whatever succeeded *)
  let results = List.filter_map Result.to_option [ vqp; opt; dom; scan; join ] in
  match results with
  | first :: rest ->
      if List.for_all (fun r -> r = first) rest then
        Printf.printf "\nAll successful engines agree on the result set.\n"
      else Printf.printf "\nWARNING: engines disagree!\n"
  | [] -> Printf.printf "\nNo engine produced a result.\n"
