(* Cost explorer: watch the paper's optimizer at work.

   Prints the default physical plan with COUNT/IN/OUT/selectivity
   annotations (paper Figures 6 and 7), the transformations the optimizer
   admits, and the final plan — for the running examples and any query
   passed on the command line.

     dune exec examples/cost_explorer.exe
     dune exec examples/cost_explorer.exe -- "//person[profile]/name" *)

module Store = Mass.Store

let () =
  let store = Store.create () in
  (* 10 MB-scale gives the exact counts the paper's figures show:
     2550 person, 1256 address, 4825 name *)
  let doc = Xmark.load store 10.0 in
  let queries =
    if Array.length Sys.argv > 1 then Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
    else
      [ (* paper running example Q1 (Figures 5, 6, 8, 11) *)
        "descendant::name/parent::*/self::person/address";
        (* paper running example Q2 (Figures 7, 9) *)
        "//name[text()='Yung Flach']/following-sibling::emailaddress";
        (* duplicate elimination (§VIII Q2) *)
        "//watches/watch/ancestor::person" ]
  in
  List.iter
    (fun q ->
      Printf.printf "=========================================================\n";
      Printf.printf "Query: %s\n\n" q;
      match Vamana.Engine.explain store doc q with
      | Ok text -> print_string text
      | Error e -> Printf.printf "error: %s\n" e)
    queries;

  (* the paper's key claim: statistics come from the index, so they stay
     exact under updates — delete the only 'Yung Flach' and re-cost *)
  Printf.printf "=========================================================\n";
  Printf.printf "Statistics under updates (paper §VI: no histogram staleness)\n\n";
  let q = "//name[text()='Yung Flach']/following-sibling::emailaddress" in
  let tc () = Store.text_value_count store "Yung Flach" in
  Printf.printf "TC('Yung Flach') before update: %d\n" (tc ());
  let keys =
    match Vamana.Engine.query_doc store doc "//person[name='Yung Flach']" with
    | Ok r -> r.Vamana.Engine.keys
    | Error _ -> []
  in
  List.iter (fun k -> ignore (Store.delete_subtree store k)) keys;
  Printf.printf "TC('Yung Flach') after deleting that person: %d\n\n" (tc ());
  match Vamana.Engine.explain store doc q with
  | Ok text -> print_string text
  | Error e -> Printf.printf "error: %s\n" e
