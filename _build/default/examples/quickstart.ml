(* Quickstart: load an XML document into MASS and run XPath queries
   through the VAMANA engine.

     dune exec examples/quickstart.exe *)

let document =
  {xml|<library>
  <book id="b1" year="1994">
    <title>Transaction Processing</title>
    <author>Jim Gray</author>
    <author>Andreas Reuter</author>
    <price>89.50</price>
  </book>
  <book id="b2" year="2003">
    <title>Database Management Systems</title>
    <author>Raghu Ramakrishnan</author>
    <price>65.00</price>
  </book>
  <book id="b3" year="1999">
    <title>Principles of Distributed Database Systems</title>
    <author>M. Tamer Ozsu</author>
    <price>49.99</price>
  </book>
</library>|xml}

let () =
  (* 1. create a store and load a document *)
  let store = Mass.Store.create () in
  let doc = Mass.Store.load_string store ~name:"library.xml" document in
  Printf.printf "Loaded %s: %d records\n\n" doc.Mass.Store.doc_name
    (Mass.Store.total_records store);

  (* 2. run queries; results are FLEX keys, materialized on demand *)
  let run query =
    Printf.printf "Q: %s\n" query;
    match Vamana.Engine.query_doc store doc query with
    | Error msg -> Printf.printf "   error: %s\n" msg
    | Ok r ->
        List.iter
          (fun key ->
            let record = Mass.Store.get_exn store key in
            Printf.printf "   %-10s %-8s %s\n"
              (Flex.to_string key)
              record.Mass.Record.name
              (Mass.Store.string_value store key))
          r.Vamana.Engine.keys;
        Printf.printf "   (%d results, executed in %.3f ms)\n" (List.length r.Vamana.Engine.keys)
          (r.Vamana.Engine.execute_time *. 1000.)
  in
  run "//book[price > 60]/title";
  run "//author";
  run "//book[@year='1999']/title";
  run "//book[count(author) = 2]/title";
  run "//title[text()='Database Management Systems']/following-sibling::author";

  (* 3. non-path expressions go through the generic evaluator *)
  (match Vamana.Engine.eval store ~context:doc.Mass.Store.doc_key "count(//book)" with
  | Ok (Xpath.Eval.Num n) -> Printf.printf "\ncount(//book) = %.0f\n" n
  | Ok _ | Error _ -> ());

  (* 4. inspect what the optimizer did *)
  match Vamana.Engine.explain store doc "//title[text()='Transaction Processing']" with
  | Ok plan -> Printf.printf "\n%s" plan
  | Error msg -> Printf.printf "explain error: %s\n" msg
