(* Auction-site analytics: the paper's motivating workload.

   Generates an XMark-style auction document, then answers the kinds of
   questions the paper's benchmark queries model — comparing the default
   (VQP) and optimized (VQP-OPT) plans on each and showing page I/O.

     dune exec examples/auction_site.exe -- [megabytes] *)

module Store = Mass.Store

let () =
  let megabytes =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 2.0
  in
  let store = Store.create ~pool_pages:8192 () in
  Printf.printf "Generating a %.1f MB-scale auction site...\n%!" megabytes;
  let doc = Xmark.load store megabytes in
  let stats = Store.statistics store in
  Printf.printf "%d records, %d index pages, %.1f tuples/page\n\n"
    stats.Store.record_count
    (stats.Store.doc_index_pages + stats.Store.name_index_pages + stats.Store.value_index_pages)
    stats.Store.tuples_per_page;

  let report label query =
    Printf.printf "%s\n  %s\n" label query;
    let run optimize =
      Store.reset_io_stats store;
      match Vamana.Engine.query ~optimize store ~context:doc.Store.doc_key query with
      | Ok r ->
          Printf.printf "  %-8s %6d results  %8.2f ms exec  %6d page reads%s\n"
            (if optimize then "VQP-OPT" else "VQP")
            (List.length r.Vamana.Engine.keys)
            (r.Vamana.Engine.execute_time *. 1000.)
            r.Vamana.Engine.io.Storage.Stats.logical_reads
            (if optimize then
               Printf.sprintf "  (optimizer: %.3f ms)" (r.Vamana.Engine.optimize_time *. 1000.)
             else "")
      | Error e -> Printf.printf "  error: %s\n" e
    in
    run false;
    run true;
    print_newline ()
  in

  report "People and where they live (paper Q1)" "//person/address";
  report "Who watches auctions? (paper Q2)" "//watches/watch/ancestor::person";
  report "Persons via their name elements (paper Q3)"
    "/descendant::name/parent::*/self::person/address";
  report "Auctions with their prices (paper Q4)"
    "//itemref/following-sibling::price/parent::*";
  report "Vermont residents (paper Q5)" "//province[text()='Vermont']/ancestor::person";
  report "High-value open auctions" "//open_auction[current > 300]/itemref";
  report "People without an address" "//person[not(address)]/name";

  (* a business question that is not a bare path *)
  match
    Vamana.Engine.eval store ~context:doc.Store.doc_key
      "count(//person[watches]) div count(//person)"
  with
  | Ok (Xpath.Eval.Num ratio) ->
      Printf.printf "Share of people watching at least one auction: %.1f%%\n" (ratio *. 100.)
  | Ok _ | Error _ -> ()
