examples/xquery_report.ml: Array List Mass Printf String Sys Xmark Xquery
