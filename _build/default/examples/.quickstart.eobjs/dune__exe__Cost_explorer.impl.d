examples/cost_explorer.ml: Array List Mass Printf Sys Vamana Xmark
