examples/engine_shootout.ml: Array Baselines List Mass Printf Result Storage Sys Unix Vamana Xmark Xml
