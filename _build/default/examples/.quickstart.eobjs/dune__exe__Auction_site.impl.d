examples/auction_site.ml: Array List Mass Printf Storage Sys Vamana Xmark Xpath
