examples/quickstart.ml: Flex List Mass Printf Vamana Xpath
