examples/quickstart.mli:
