examples/xquery_report.mli:
