(* vamana — command-line front end for the VAMANA XPath engine.

     vamana query   [-f doc.xml | -x MB] [--no-optimize] [-v] QUERY
     vamana explain [-f doc.xml | -x MB] QUERY
     vamana lint    [-f doc.xml | -x MB] [--json] [-q queries.txt | QUERY]
     vamana prove   [--depth D --fanout F --tags K --texts T --max-nodes N --steps S]
                    [--random N --seed S] [--json] [--mutant NAME] [--replay FILE]
     vamana synopsis [-f doc.xml | -x MB] [--json | --check]
     vamana stats   [-f doc.xml | -x MB] [--tags N]
     vamana generate -x MB [-o out.xml]
     vamana serve   [-f doc.xml | -x MB | -s SNAP] [-q queries.txt]
                    [--repeat N] [--json] [--slow-ms MS] ...
     vamana events  [-f doc.xml | -x MB | -s SNAP] [-q queries.txt]
                    [--json] [--follow] [--sample CAT=N] [--ring N]
     vamana trace   [-f doc.xml | -x MB | -s SNAP] [-q queries.txt] [-o trace.json]
     vamana report  -d DIR [--top N]  *)

open Cmdliner
module Store = Mass.Store

let first_doc store =
  match Store.documents store with
  | d :: _ -> d
  | [] -> failwith "store contains no documents"

let report_recovery store =
  match Store.last_recovery store with
  | Some r ->
      Printf.eprintf
        "recovered to epoch %d: %d batches (%d records) replayed, %d bytes of torn log dropped\n"
        r.Storage.Disk.rec_epoch r.Storage.Disk.rec_batches r.Storage.Disk.rec_records
        r.Storage.Disk.rec_dropped_bytes
  | None -> ()

let input_doc ?(pool_pages = 16384) file xmark_mb snapshot data_dir =
  let backend = Option.map (fun dir -> Store.File { dir }) data_dir in
  match (data_dir, file, xmark_mb, snapshot) with
  | Some dir, None, None, None when Storage.Disk.is_store ~dir ->
      (* no input source: reopen the existing durable store (with recovery) *)
      let store = Store.open_file ~pool_pages ~dir () in
      report_recovery store;
      (store, first_doc store)
  | _ -> (
      match snapshot with
      | Some path ->
          let store = Store.load_file ~pool_pages ?backend path in
          (store, first_doc store)
      | None -> (
          let store = Store.create ~pool_pages ?backend () in
          match (file, xmark_mb) with
          | Some path, _ ->
              let tree = Xml.Parser.parse_file path in
              let doc = Store.load store ~name:(Filename.basename path) tree in
              (store, doc)
          | None, Some mb ->
              let doc = Xmark.load store mb in
              (store, doc)
          | None, None ->
              let doc = Xmark.load store 1.0 in
              (store, doc)))

let file_arg =
  let doc = "XML document to load." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let xmark_arg =
  let doc = "Generate an XMark-style document of this many megabytes instead of loading a file." in
  Arg.(value & opt (some float) None & info [ "x"; "xmark" ] ~docv:"MB" ~doc)

let snapshot_arg =
  let doc = "Load the store from a snapshot written by $(b,vamana save)." in
  Arg.(value & opt (some file) None & info [ "s"; "snapshot" ] ~docv:"SNAP" ~doc)

let data_dir_arg =
  let doc =
    "Durable file-backed storage directory (data file + write-ahead log + manifest). \
     Without $(b,-f)/$(b,-x)/$(b,-s) an existing store at $(docv) is reopened, running \
     crash recovery if the last process died uncleanly; with an input source a fresh \
     store is built at $(docv) and is durable when the command exits."
  in
  Arg.(value & opt (some string) None & info [ "d"; "data-dir" ] ~docv:"DIR" ~doc)

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"XPath expression.")

let handle_parse_errors f =
  try f () with
  | Xml.Parser.Error _ as e ->
      Printf.eprintf "%s\n" (Option.value ~default:"XML error" (Xml.Parser.error_to_string e));
      exit 1
  | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let run_query file xmark_mb snapshot data_dir no_optimize verbose query =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  match Vamana.Engine.query ~optimize:(not no_optimize) store ~context:doc.Store.doc_key query with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok r ->
      List.iter
        (fun key ->
          let record = Store.get_exn store key in
          let value = Store.string_value store key in
          let shown =
            if String.length value > 60 then String.sub value 0 57 ^ "..." else value
          in
          if verbose then
            Printf.printf "%-16s %-10s %-14s %s\n" (Flex.to_string key)
              (Mass.Record.kind_to_string record.Mass.Record.kind)
              record.Mass.Record.name shown
          else
            Printf.printf "%s%s\n" record.Mass.Record.name
              (if shown = "" then "" else (if record.Mass.Record.name = "" then "" else ": ") ^ shown))
        r.Vamana.Engine.keys;
      Printf.eprintf "-- %d results; compile %.2f ms, optimize %.2f ms, execute %.2f ms, %d page reads\n"
        (List.length r.Vamana.Engine.keys)
        (r.Vamana.Engine.compile_time *. 1000.)
        (r.Vamana.Engine.optimize_time *. 1000.)
        (r.Vamana.Engine.execute_time *. 1000.)
        r.Vamana.Engine.io.Storage.Stats.logical_reads

let run_explain file xmark_mb snapshot data_dir analyze json no_optimize query =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  let rendered =
    if analyze then
      Vamana.Engine.explain_analyze ~optimize:(not no_optimize) ~json store doc query
    else Vamana.Engine.explain ~optimize:(not no_optimize) store doc query
  in
  match rendered with
  | Ok text ->
      print_string text;
      if json && not (String.length text > 0 && text.[String.length text - 1] = '\n') then
        print_newline ()
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* fixed-width #-bar for the stats histograms *)
let bar width n max_n =
  let len = if max_n <= 0 then 0 else n * width / max_n in
  String.make (max len (if n > 0 then 1 else 0)) '#'

(* bucket exact fanout counts into 0,1,2,3-4,5-8,... power-of-two ranges *)
let bucket_fanouts fanouts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f, n) ->
      let lo, hi =
        if f <= 2 then (f, f)
        else
          let rec go lo = if f <= 2 * lo then (lo + 1, 2 * lo) else go (2 * lo) in
          go 2
      in
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl (lo, hi)) in
      Hashtbl.replace tbl (lo, hi) (cur + n))
    fanouts;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun ((a, _), _) ((b, _), _) -> compare a b)

let openmetrics_snapshot ?metrics ?(plan_health = []) store =
  let metrics =
    match metrics with Some m -> m | None -> Vamana_service.Metrics.create ()
  in
  Vamana_service.Metrics.to_openmetrics ~io:(Store.io_stats store)
    ~pools:(Store.io_by_index store)
    ?disk:(Store.disk_io store) ~plan_health metrics

let run_stats file xmark_mb snapshot data_dir top_tags openmetrics =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  if openmetrics then begin
    (* machine output only: the exposition text is the whole contract *)
    print_string (openmetrics_snapshot store);
    ignore doc
  end
  else begin
  let s = Store.statistics store in
  Printf.printf "document          %s\n" doc.Store.doc_name;
  Printf.printf "records           %d\n" s.Store.record_count;
  Printf.printf "elements          %d\n" doc.Store.element_count;
  Printf.printf "attributes        %d\n" doc.Store.attribute_count;
  Printf.printf "text nodes        %d\n" doc.Store.text_count;
  Printf.printf "doc index pages   %d (height %d)\n" s.Store.doc_index_pages s.Store.doc_index_height;
  Printf.printf "name index pages  %d\n" s.Store.name_index_pages;
  Printf.printf "value index pages %d\n" s.Store.value_index_pages;
  Printf.printf "tuples per page   %.1f\n" s.Store.tuples_per_page;
  (* per-tag record counts straight off the name index *)
  let tags =
    List.sort (fun (_, a) (_, b) -> compare b a) (Store.name_statistics store)
  in
  let shown = List.filteri (fun i _ -> i < top_tags) tags in
  Printf.printf "\n== per-tag record counts (top %d of %d tags) ==\n"
    (List.length shown) (List.length tags);
  let max_n = match shown with (_, n) :: _ -> n | [] -> 0 in
  List.iter
    (fun (tag, n) -> Printf.printf "%-24s %9d %s\n" tag n (bar 40 n max_n))
    shown;
  (* depth / fanout distributions: one clustered scan *)
  let st = Store.structure_statistics store doc in
  Printf.printf "\n== depth histogram (document record = 0, max %d) ==\n" st.Store.s_max_depth;
  let max_d = List.fold_left (fun acc (_, n) -> max acc n) 0 st.Store.s_depths in
  List.iter
    (fun (d, n) -> Printf.printf "%-5d %9d %s\n" d n (bar 40 n max_d))
    st.Store.s_depths;
  Printf.printf "\n== fanout histogram (direct sub-records; mean %.1f, max %d) ==\n"
    st.Store.s_mean_fanout st.Store.s_max_fanout;
  let buckets = bucket_fanouts st.Store.s_fanouts in
  let max_f = List.fold_left (fun acc (_, n) -> max acc n) 0 buckets in
  List.iter
    (fun ((lo, hi), n) ->
      let label = if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi in
      Printf.printf "%-7s %9d %s\n" label n (bar 40 n max_f))
    buckets;
  (* buffer-pool breakdown per index *)
  Printf.printf "\n== buffer pools ==\n";
  Printf.printf "%-12s %9s %9s %9s %10s %10s %10s %11s %7s %7s\n" "index" "pages"
    "resident" "capacity" "logical" "physical" "evictions" "wb_bytes" "fsyncs" "hit";
  List.iter
    (fun (p : Store.pool_info) ->
      Printf.printf "%-12s %9d %9d %9d %10d %10d %10d %11d %7d %6.1f%%\n"
        p.Store.pool_index p.Store.pool_pages_total p.Store.pool_resident
        p.Store.pool_capacity p.Store.pool_io.Storage.Stats.logical_reads
        p.Store.pool_io.Storage.Stats.physical_reads
        p.Store.pool_io.Storage.Stats.evictions
        p.Store.pool_io.Storage.Stats.write_back_bytes
        p.Store.pool_io.Storage.Stats.fsyncs
        (100. *. Storage.Stats.hit_ratio p.Store.pool_io))
    (Store.pool_by_index store);
  (* disk layer (file backend only): WAL and data-file traffic *)
  (match Store.disk_io store with
  | None -> ()
  | Some io ->
      Printf.printf "\n== disk (%s) ==\n"
        (Option.value ~default:"?" (Store.data_dir store));
      Printf.printf "wal records       %d (%d bytes written, %d pending)\n"
        io.Storage.Disk.wal_records io.Storage.Disk.wal_bytes_written
        (Option.value ~default:0 (Store.disk_wal_bytes store));
      Printf.printf "fsyncs            %d\n" io.Storage.Disk.fsyncs;
      Printf.printf "checkpoints       %d\n" io.Storage.Disk.checkpoints;
      Printf.printf "data reads        %d (%d bytes)\n" io.Storage.Disk.data_reads
        io.Storage.Disk.data_read_bytes;
      Printf.printf "data writes       %d (%d bytes)\n" io.Storage.Disk.data_writes
        io.Storage.Disk.data_write_bytes)
  end

let run_generate mb output seed =
  let text = Xmark.generate_string ?seed:(Option.map Int64.of_int seed) mb in
  match output with
  | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      Printf.eprintf "wrote %d bytes to %s\n" (String.length text) path
  | None -> print_string text

let no_optimize_arg =
  Arg.(value & flag & info [ "n"; "no-optimize" ] ~doc:"Execute the default plan (VQP) without optimization.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show FLEX keys and node kinds.")

let query_cmd =
  Cmd.v (Cmd.info "query" ~doc:"Run an XPath query")
    Term.(const run_query $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ no_optimize_arg $ verbose_arg $ query_arg)

let explain_cmd =
  let analyze_arg =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Execute the query with per-operator profiling and show actual vs estimated \
                   cardinalities, q-error, timings and page I/O.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"With $(b,--analyze): emit the profile report as JSON.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show cost-annotated plans; with --analyze, profile an actual execution")
    Term.(const run_explain $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ analyze_arg $ json_arg
          $ no_optimize_arg $ query_arg)

let stats_cmd =
  let tags_arg =
    Arg.(value & opt int 20
         & info [ "tags" ] ~docv:"N" ~doc:"Show the N most frequent tags.")
  in
  let openmetrics_arg =
    Arg.(value & flag
         & info [ "openmetrics" ]
             ~doc:"Emit the storage counters (buffer pools, per-index I/O, WAL/disk traffic) \
                   in OpenMetrics/Prometheus text exposition format instead of the human \
                   report; ends with '# EOF'.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show storage statistics: record counts, per-tag counts, depth and fanout \
             histograms, buffer-pool breakdown")
    Term.(const run_stats $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ tags_arg
          $ openmetrics_arg)

let generate_cmd =
  let mb = Arg.(value & opt float 1.0 & info [ "x"; "xmark" ] ~docv:"MB" ~doc:"Document size.") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.") in
  let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.") in
  Cmd.v (Cmd.info "generate" ~doc:"Emit an XMark-style document")
    Term.(const run_generate $ mb $ out $ seed)

let run_xquery file xmark_mb snapshot data_dir query =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  match Xquery.run_to_xml store ~context:doc.Store.doc_key query with
  | xml -> print_endline xml
  | exception Xquery.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let xquery_cmd =
  Cmd.v (Cmd.info "xquery" ~doc:"Run an XQuery-lite FLWOR query")
    Term.(const run_xquery $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ query_arg)

(* ---- serve: batch query service with caches and metrics ---- *)

let read_queries = function
  | Some path ->
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
  | None ->
      let rec go acc =
        match input_line stdin with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go []

let is_query line =
  let line = String.trim line in
  String.length line > 0 && line.[0] <> '#'

(* snapshot files (OpenMetrics, traces) are rewritten whole: temp +
   rename so a scraper never reads a half-written exposition *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
  Sys.rename tmp path

(* ---- lint: static plan diagnostics without execution ---- *)

let run_lint file xmark_mb snapshot data_dir no_optimize json queries_file query =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  let queries =
    match query with
    | Some q -> [ q ]
    | None -> List.filter is_query (read_queries queries_file)
  in
  if queries = [] then begin
    Printf.eprintf "no queries (pass one as an argument, or -q FILE / stdin, one per line)\n";
    exit 1
  end;
  let scope = Some doc.Store.doc_key in
  let errors = ref 0 and warnings = ref 0 in
  let module A = Vamana.Analysis in
  let module T = Xpath.Typecheck in
  let module J = Vamana.Profile.Json in
  let lint_one q =
    (* parse separately first: the engine's error string is one line,
       the lint report wants the caret rendering under the source *)
    match Xpath.Parser.parse_spanned q with
    | exception (Xpath.Parser.Error _ as exn) ->
        incr errors;
        Error (Option.value ~default:"parse error" (Xpath.Parser.error_caret q exn))
    | _ -> (
    match Vamana.Engine.prepare ~optimize:(not no_optimize) store ~scope q with
    | Error msg ->
        incr errors;
        Error msg
    | Ok p ->
        let pairs = List.combine p.Vamana.Engine.executed_plans p.Vamana.Engine.analyses in
        List.iter
          (fun (_, (a : A.t)) ->
            List.iter
              (fun (d : A.diagnostic) ->
                match d.A.severity with
                | A.Error -> incr errors
                | A.Warning -> incr warnings
                | A.Info -> ())
              a.A.diagnostics)
          pairs;
        let rep = p.Vamana.Engine.prep_report in
        List.iter
          (fun (d : T.diagnostic) ->
            match d.T.severity with
            | T.Error -> incr errors
            | T.Warning -> incr warnings
            | T.Info -> ())
          rep.T.rep_diagnostics;
        Ok (rep, pairs, p.Vamana.Engine.prep_footprint))
  in
  let results = List.map (fun q -> (q, lint_one q)) queries in
  let span_json = function
    | None -> J.Null
    | Some (s : Xpath.Parser.span) ->
        J.Obj [ ("start", J.Int s.Xpath.Parser.sp_start); ("stop", J.Int s.Xpath.Parser.sp_stop) ]
  in
  let typecheck_json (rep : T.report) =
    J.Obj
      [ ("type", J.Str (T.ty_to_string rep.T.rep_ty));
        ("schema_empty", J.Bool rep.T.rep_empty);
        ( "diagnostics",
          J.Arr
            (List.map
               (fun (d : T.diagnostic) ->
                 J.Obj
                   [ ("severity", J.Str (T.severity_to_string d.T.severity));
                     ("code", J.Str d.T.code);
                     ("span", span_json d.T.span);
                     ("message", J.Str d.T.message) ])
               rep.T.rep_diagnostics) );
        ( "steps",
          J.Arr
            (List.map
               (fun (s : T.step_note) ->
                 J.Obj
                   [ ("axis", J.Str (Xpath.Ast.axis_name s.T.sn_axis));
                     ("test", J.Str (Xpath.Ast.node_test_to_string s.T.sn_test));
                     ("span", span_json s.T.sn_span);
                     ("bound", J.Int s.T.sn_bound);
                     ("exact", J.Bool s.T.sn_exact);
                     ("empty", J.Bool s.T.sn_empty) ])
               rep.T.rep_steps) ) ]
  in
  (if json then
     let rows =
       List.map
         (fun (q, r) ->
           match r with
           | Error msg -> J.Obj [ ("query", J.Str q); ("error", J.Str msg) ]
           | Ok (rep, pairs, fp) ->
               J.Obj
                 [ ("query", J.Str q);
                   ("typecheck", typecheck_json rep);
                   ("footprint", Vamana.Footprint.to_json fp);
                   ("branches", J.Arr (List.map (fun (plan, a) -> A.to_json a plan) pairs)) ])
         results
     in
     print_endline
       (J.to_string
          (J.Obj
             [ ("queries", J.Arr rows);
               ("errors", J.Int !errors);
               ("warnings", J.Int !warnings) ]))
   else begin
     (* caret renderings are multi-line; keep the two-space indent on
        every line so diagnostics stay visually attached to their query *)
     let print_indented s =
       List.iter (fun l -> Printf.printf "  %s\n" l) (String.split_on_char '\n' s)
     in
     List.iter
       (fun (q, r) ->
         Printf.printf "%s\n" q;
         match r with
         | Error msg ->
             if String.contains msg '\n' then begin
               Printf.printf "  error [compile]\n";
               print_indented msg
             end
             else Printf.printf "  error [compile] %s\n" msg
         | Ok (rep, pairs, fp) ->
             List.iter
               (fun (d : T.diagnostic) ->
                 print_indented (Format.asprintf "%a" (T.pp_diagnostic ~src:q) d))
               rep.T.rep_diagnostics;
             Printf.printf "  footprint: %s\n" (Vamana.Footprint.to_string fp);
             List.iter
               (fun (_, (a : A.t)) ->
                 Printf.printf "  properties: %s%s\n"
                   (A.props_to_string a.A.root_props)
                   (if A.statically_empty a then "  -- statically empty, execution skipped"
                    else "");
                 match a.A.diagnostics with
                 | [] -> if rep.T.rep_diagnostics = [] then Printf.printf "  clean\n"
                 | ds ->
                     List.iter
                       (fun d -> Printf.printf "  %s\n" (A.diagnostic_to_string d))
                       ds)
               pairs)
       results;
     Printf.printf "-- %d queries, %d errors, %d warnings\n" (List.length results) !errors
       !warnings
   end);
  if !errors > 0 then exit 1

let lint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a single JSON document.")
  in
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Query batch, one XPath per line ('#' starts a comment). Default: stdin \
                   when no QUERY argument is given.")
  in
  let query_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"XPath expression.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze query plans: inferred stream properties (order, \
             duplicate-freedom, cardinality bounds, static emptiness) and severity-ranked \
             diagnostics, without executing anything. Exits non-zero on error-severity \
             diagnostics.")
    Term.(const run_lint $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ no_optimize_arg $ json_arg
          $ queries_arg $ query_opt_arg)

(* ---- footprint: static read footprints of compiled plans ---- *)

let run_footprint file xmark_mb snapshot data_dir no_optimize json queries_file query =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  let queries =
    match query with
    | Some q -> [ q ]
    | None -> List.filter is_query (read_queries queries_file)
  in
  if queries = [] then begin
    Printf.eprintf "no queries (pass one as an argument, or -q FILE / stdin, one per line)\n";
    exit 1
  end;
  let scope = Some doc.Store.doc_key in
  let module F = Vamana.Footprint in
  let module J = Vamana.Profile.Json in
  let errors = ref 0 in
  let results =
    List.map
      (fun q ->
        match Vamana.Engine.prepare ~optimize:(not no_optimize) store ~scope q with
        | Error msg ->
            incr errors;
            (q, Error msg)
        | Ok p -> (q, Ok p.Vamana.Engine.prep_footprint))
      queries
  in
  (if json then
     let rows =
       List.map
         (fun (q, r) ->
           match r with
           | Error msg -> J.Obj [ ("query", J.Str q); ("error", J.Str msg) ]
           | Ok fp ->
               J.Obj
                 [ ("query", J.Str q);
                   ("footprint", F.to_json fp);
                   ("top", J.Bool (F.is_top fp)) ])
         results
     in
     print_endline
       (J.to_string (J.Obj [ ("queries", J.Arr rows); ("errors", J.Int !errors) ]))
   else
     List.iter
       (fun (q, r) ->
         match r with
         | Error msg -> Printf.printf "%s\n  error %s\n" q msg
         | Ok fp -> Printf.printf "%s\n  %s\n" q (F.to_string fp))
       results);
  if !errors > 0 then exit 1

let footprint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit footprints as a single JSON document.")
  in
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Query batch, one XPath per line ('#' starts a comment). Default: stdin \
                   when no QUERY argument is given.")
  in
  let query_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"XPath expression.")
  in
  Cmd.v
    (Cmd.info "footprint"
       ~doc:"Compute the static read footprint of each query's prepared plan — the tag \
             tests, node-kind classes, value-index keys and string-value cones it can \
             touch. A store update whose write delta is disjoint from the footprint \
             provably leaves the query's result unchanged; this is the evidence the \
             service's result cache uses to keep entries across mutations. ⊤ means the \
             analysis could not bound the reads (e.g. a variable or unknown function).")
    Term.(const run_footprint $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg
          $ no_optimize_arg $ json_arg $ queries_arg $ query_opt_arg)

(* ---- synopsis: dump or verify the path synopsis ---- *)

let run_synopsis file xmark_mb snapshot data_dir json check =
  handle_parse_errors @@ fun () ->
  let store, _doc = input_doc file xmark_mb snapshot data_dir in
  let module S = Mass.Synopsis in
  let syn = S.for_store store in
  if check then (
    match S.verify store syn with
    | Ok () ->
        Printf.printf "synopsis consistent: %d paths, %d records, epoch %d\n" (S.paths syn)
          (S.records syn) (S.epoch syn)
    | Error msg ->
        Printf.eprintf "synopsis check FAILED: %s\n" msg;
        exit 1)
  else if json then begin
    let module J = Vamana.Profile.Json in
    let rows =
      List.rev
        (S.fold syn ~init:[] ~f:(fun acc ~path ~count ->
             J.Obj [ ("path", J.Str (String.concat "/" path)); ("count", J.Int count) ] :: acc))
    in
    print_endline
      (J.to_string
         (J.Obj
            [ ("epoch", J.Int (S.epoch syn));
              ("paths", J.Int (S.paths syn));
              ("records", J.Int (S.records syn));
              ("nodes", J.Arr rows) ]))
  end
  else begin
    Printf.printf "%d paths, %d records (epoch %d)\n" (S.paths syn) (S.records syn)
      (S.epoch syn);
    ignore
      (S.fold syn ~init:() ~f:(fun () ~path ~count ->
           let depth = List.length path - 1 in
           let tag = List.nth path depth in
           Printf.printf "%-48s %9d\n" (String.make (2 * depth) ' ' ^ tag) count))
  end

let synopsis_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the synopsis as a single JSON document.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Verify the cached synopsis against a fresh store scan and the per-kind \
                   record counters instead of dumping it; exits non-zero on any discrepancy.")
  in
  Cmd.v
    (Cmd.info "synopsis"
       ~doc:"Show the DataGuide-style path synopsis: one row per distinct root-to-tag path \
             with its exact record count — the structural summary behind the static checker \
             and the optimizer's chain cardinalities")
    Term.(const run_synopsis $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ json_arg $ check_arg)

let run_serve file xmark_mb snapshot data_dir queries_file repeat no_optimize plan_cap result_cap json
    quiet slow_ms trace_out metrics_out sample_every drift_threshold =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  (* a durable store gets a flight recorder for free: every served query
     leaves a begin/end record pair in <data-dir>/flight.log *)
  let flight =
    Option.map (fun dir -> Storage.Flight.open_dir ~dir ()) (Store.data_dir store)
  in
  let service =
    (* slow-query logging is opt-in on the CLI: without --slow-ms the
       threshold is infinite and the service log stays empty *)
    Vamana_service.Service.create ~plan_cache_capacity:plan_cap
      ~result_cache_capacity:result_cap ~optimize:(not no_optimize)
      ~slow_threshold:(if slow_ms > 0. then slow_ms /. 1000. else infinity)
      ~sample_every ~drift_threshold ?flight store
  in
  let queries = List.filter is_query (read_queries queries_file) in
  if queries = [] then begin
    Printf.eprintf "no queries (one XPath per line; '#' comments)\n";
    exit 1
  end;
  let cache_tag = function
    | `Hit -> "hit"
    | `Miss -> "miss"
    | `Stale -> "stale"
    | `Bypass -> "-"
  in
  let trace_events = ref [] in
  let trace_sink =
    Option.map
      (fun _ ->
        Obs.reset ();
        Obs.attach_sink (fun e -> trace_events := e :: !trace_events))
      trace_out
  in
  let write_metrics () =
    Option.iter
      (fun path ->
        write_atomic path
          (openmetrics_snapshot ~metrics:(Vamana_service.Service.metrics service)
             ~plan_health:
               (Vamana_service.Health.openmetrics_families
                  (Vamana_service.Service.health service))
             store))
      metrics_out
  in
  if not quiet then
    Printf.printf "%-44s %8s %10s %6s %6s\n" "query" "results" "ms" "plan" "result";
  let failures = ref 0 in
  (* the final snapshot must appear even when queries in the batch fail
     (including evaluator exceptions), so every failure is contained here *)
  for round = 1 to max 1 repeat do
    if (not quiet) && repeat > 1 then Printf.printf "-- round %d --\n" round;
    List.iter
      (fun q ->
        let outcome =
          match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
          | o -> o
          | exception e -> Error (Printexc.to_string e)
        in
        match outcome with
        | Ok o ->
            if not quiet then
              Printf.printf "%-44s %8d %10.3f %6s %6s\n" q
                (List.length o.Vamana_service.Service.result.Vamana.Engine.keys)
                (o.Vamana_service.Service.total_time *. 1000.)
                (cache_tag o.Vamana_service.Service.plan_cache)
                (cache_tag o.Vamana_service.Service.result_cache)
        | Error msg ->
            incr failures;
            Printf.eprintf "%-44s error: %s\n" q msg)
      queries;
    (* rewrite the scrape file after every round so a long-running batch
       exposes fresh counters, not just a final post-mortem *)
    write_metrics ()
  done;
  (match trace_sink with
  | None -> ()
  | Some s ->
      Obs.detach_sink s;
      let path = Option.get trace_out in
      write_atomic path (Obs.Trace.to_chrome (List.rev !trace_events));
      Printf.eprintf "wrote %d trace events to %s\n" (List.length !trace_events) path);
  Option.iter Storage.Flight.close flight;
  (if slow_ms > 0. && not json then begin
     let slow = Vamana_service.Service.slow_queries service in
     Printf.printf "\n== slow queries (>= %.1f ms; %d logged) ==\n" slow_ms (List.length slow);
     if slow <> [] then
       Printf.printf "%-44s %5s %10s %8s %6s %6s %7s %9s %6s %6s\n" "query" "qid" "ms" "results"
         "plan" "result" "pages" "wal_bytes" "fsyncs" "drift";
     List.iter
       (fun (sq : Vamana_service.Service.slow_query) ->
         Printf.printf "%-44s %5d %10.3f %8d %6s %6s %7d %9d %6d %6.2f\n"
           sq.Vamana_service.Service.sq_query sq.Vamana_service.Service.sq_qid
           (sq.Vamana_service.Service.sq_total_time *. 1000.)
           sq.Vamana_service.Service.sq_results
           (cache_tag sq.Vamana_service.Service.sq_plan_cache)
           (cache_tag sq.Vamana_service.Service.sq_result_cache)
           sq.Vamana_service.Service.sq_io.Storage.Stats.logical_reads
           sq.Vamana_service.Service.sq_wal_bytes sq.Vamana_service.Service.sq_fsyncs
           sq.Vamana_service.Service.sq_drift)
       slow
   end);
  let snapshot_out =
    if json then Vamana_service.Service.snapshot_json service
    else "\n== metrics snapshot ==\n" ^ Vamana_service.Service.snapshot_text service
  in
  print_string snapshot_out;
  if json then print_newline ();
  if !failures > 0 then begin
    Printf.eprintf "%d of %d queries failed\n" !failures (List.length queries * max 1 repeat);
    exit 1
  end

let serve_cmd =
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Query batch, one XPath per line ('#' starts a comment). Default: stdin.")
  in
  let repeat_arg =
    Arg.(value & opt int 1
         & info [ "r"; "repeat" ] ~docv:"N" ~doc:"Run the batch N times (warms the caches).")
  in
  let plan_cap_arg =
    Arg.(value & opt int 128 & info [ "plan-cache" ] ~docv:"N" ~doc:"Plan cache capacity.")
  in
  let result_cap_arg =
    Arg.(value & opt int 512
         & info [ "result-cache" ] ~docv:"N" ~doc:"Result cache capacity (0 disables).")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the metrics snapshot as JSON.") in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-query output.") in
  let slow_ms_arg =
    Arg.(value & opt float 0.0
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log queries slower than MS milliseconds and print them (with their cache \
                   outcomes) after the batch. Default: off.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record the batch's telemetry events and write them as a Chrome \
                   trace_event JSON file (open in Perfetto or chrome://tracing).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Rewrite FILE atomically (temp + rename) with an OpenMetrics snapshot \
                   of the service and storage counters after every round.")
  in
  let sample_every_arg =
    Arg.(value & opt int Vamana_service.Health.default_sample_every
         & info [ "sample-every" ] ~docv:"N"
             ~doc:"Run every Nth execution of each cached plan with profiling on and feed \
                   the plan-health drift detector (0 disables sampling).")
  in
  let drift_threshold_arg =
    Arg.(value & opt float Vamana_service.Health.default_drift_threshold
         & info [ "drift-threshold" ] ~docv:"X"
             ~doc:"EWMA cost-drift score above which a plan is marked stale and \
                   transparently re-prepared on its next request (0 disables replanning).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a query batch through the cached, metered query service")
    Term.(const run_serve $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ queries_arg $ repeat_arg
          $ no_optimize_arg $ plan_cap_arg $ result_cap_arg $ json_arg $ quiet_arg
          $ slow_ms_arg $ trace_out_arg $ metrics_out_arg $ sample_every_arg $ drift_threshold_arg)

(* ---- health: drive a batch with the plan-health sampler on, churning
   the store between rounds so cost-model drift actually happens ---- *)

let run_health file xmark_mb snapshot data_dir queries_file repeat churn churn_xpath churn_tag
    sample_every drift_threshold json quiet =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  let service =
    Vamana_service.Service.create ~sample_every ~drift_threshold store
  in
  let queries = List.filter is_query (read_queries queries_file) in
  if queries = [] then begin
    Printf.eprintf "no queries (one XPath per line; '#' comments)\n";
    exit 1
  end;
  (* churn inserts land under an XPath-selected parent, so the skew hits
     exactly the statistics the batch's plans were costed against *)
  let churn_parent =
    if churn <= 0 then None
    else
      match Vamana.Engine.query store ~context:doc.Store.doc_key churn_xpath with
      | Ok { Vamana.Engine.keys = k :: _; _ } -> Some k
      | Ok _ ->
          Printf.eprintf "--churn-xpath %s selected nothing\n" churn_xpath;
          exit 1
      | Error msg ->
          Printf.eprintf "--churn-xpath %s: %s\n" churn_xpath msg;
          exit 1
  in
  let failures = ref 0 in
  let inserted = ref 0 in
  let rounds = max 1 repeat in
  for round = 1 to rounds do
    List.iter
      (fun q ->
        match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
        | Ok _ -> ()
        | Error msg ->
            incr failures;
            Printf.eprintf "%s error: %s\n" q msg
        | exception e ->
            incr failures;
            Printf.eprintf "%s error: %s\n" q (Printexc.to_string e))
      queries;
    match churn_parent with
    | Some parent when round < rounds ->
        for _ = 1 to churn do
          incr inserted;
          ignore
            (Store.insert_element store ~parent churn_tag
               [ ("h", string_of_int !inserted) ]
               (Some (Printf.sprintf "health-%d" !inserted)))
        done
    | _ -> ()
  done;
  let health = Vamana_service.Service.health service in
  if json then
    print_endline (Vamana.Profile.Json.to_string (Vamana_service.Health.to_json health))
  else begin
    let m = Vamana_service.Service.metrics service in
    let clip s n = if String.length s > n then String.sub s 0 (n - 3) ^ "..." else s in
    if not quiet then begin
      Printf.printf "rounds %d  queries %d  churn inserts %d  store epoch %d\n" rounds
        (List.length queries) !inserted (Store.epoch store);
      Printf.printf "sampled executions %d  drift events %d  adaptive replans %d\n\n"
        (Vamana_service.Metrics.counter m "sampled_executions")
        (Vamana_service.Metrics.counter m "plan_drift_events")
        (Vamana_service.Metrics.counter m "adaptive_replans")
    end;
    Printf.printf "%-40s %6s %7s %7s %6s %7s %7s %8s  %s\n" "query" "execs" "samples" "drift"
      "stale" "replans" "epoch" "max_q" "worst op";
    List.iter
      (fun (r : Vamana_service.Health.record) ->
        let last_q, worst =
          match List.rev (Vamana_service.Health.samples r) with
          | s :: _ ->
              (Printf.sprintf "%8.2f" s.Vamana_service.Health.s_max_q,
               s.Vamana_service.Health.s_worst_op)
          | [] -> ("       -", "-")
        in
        Printf.printf "%-40s %6d %7d %7.3f %6s %7d %7d %s  %s\n"
          (clip r.Vamana_service.Health.hr_query 40)
          r.Vamana_service.Health.hr_executions r.Vamana_service.Health.hr_sampled
          r.Vamana_service.Health.hr_drift
          (if r.Vamana_service.Health.hr_stale then "yes" else "no")
          r.Vamana_service.Health.hr_replans r.Vamana_service.Health.hr_last_epoch last_q
          (clip worst 32))
      (Vamana_service.Health.records health)
  end;
  if !failures > 0 then begin
    Printf.eprintf "%d of %d queries failed\n" !failures (List.length queries * rounds);
    exit 1
  end

let health_cmd =
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Query batch, one XPath per line ('#' starts a comment). Default: stdin.")
  in
  let repeat_arg =
    Arg.(value & opt int 8
         & info [ "r"; "repeat" ] ~docv:"N"
             ~doc:"Run the batch N times; churn (if any) is applied between rounds.")
  in
  let churn_arg =
    Arg.(value & opt int 0
         & info [ "churn" ] ~docv:"N"
             ~doc:"Insert N elements between rounds, drifting the statistics the cached \
                   plans were costed against. Default: no churn.")
  in
  let churn_xpath_arg =
    Arg.(value & opt string "/*"
         & info [ "churn-xpath" ] ~docv:"XPATH"
             ~doc:"Parent element for churn inserts: the first node the expression selects.")
  in
  let churn_tag_arg =
    Arg.(value & opt string "churn"
         & info [ "churn-tag" ] ~docv:"TAG" ~doc:"Tag name of churn-inserted elements.")
  in
  let sample_every_arg =
    Arg.(value & opt int 1
         & info [ "sample-every" ] ~docv:"N"
             ~doc:"Sample every Nth execution of each plan (default 1 here: every \
                   execution feeds the drift detector).")
  in
  let drift_threshold_arg =
    Arg.(value & opt float Vamana_service.Health.default_drift_threshold
         & info [ "drift-threshold" ] ~docv:"X"
             ~doc:"EWMA drift score above which a plan is re-prepared.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the full health table as JSON (per-plan drift, replans, and the \
                   sampled q-error reservoir).")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"Table only, no summary header.") in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Serve a query batch with the always-on plan-health sampler and report per-plan \
             q-error trend, EWMA cost-drift score, and adaptive replans; $(b,--churn) \
             mutates the store between rounds to force drift")
    Term.(const run_health $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ queries_arg
          $ repeat_arg $ churn_arg $ churn_xpath_arg $ churn_tag_arg $ sample_every_arg
          $ drift_threshold_arg $ json_arg $ quiet_arg)

(* ---- events: run a batch with the telemetry bus attached ---- *)

let run_events file xmark_mb snapshot data_dir queries_file repeat no_optimize json follow slow_ms
    samples ring_cap =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  let service =
    Vamana_service.Service.create ~optimize:(not no_optimize)
      ~slow_threshold:
        (if slow_ms > 0. then slow_ms /. 1000.
         else Vamana_service.Service.default_slow_threshold)
      store
  in
  let queries = List.filter is_query (read_queries queries_file) in
  if queries = [] then begin
    Printf.eprintf "no queries (one XPath per line; '#' comments)\n";
    exit 1
  end;
  Obs.reset ();
  List.iter (fun (cat, n) -> Obs.set_sample_rate cat n) samples;
  let render = if json then Obs.to_json_string else Obs.to_text in
  (* --follow streams through a live sink; otherwise events collect in
     the ring and are drained once the batch is done *)
  let sink =
    if follow then Some (Obs.attach_sink (fun e -> print_endline (render e)))
    else begin
      Obs.attach_ring ~capacity:ring_cap ();
      None
    end
  in
  let failures = ref 0 in
  let drained = ref None in
  let overwritten = ref 0 in
  (* the bus is process-global: even when the batch dies mid-run the
     sink (or ring) must come off, or every later emitter in this
     process keeps paying for a subscriber nobody drains *)
  Fun.protect
    ~finally:(fun () ->
      match sink with Some s -> Obs.detach_sink s | None -> Obs.detach_ring ())
    (fun () ->
      for _round = 1 to max 1 repeat do
        List.iter
          (fun q ->
            match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
            | Ok _ -> ()
            | Error msg ->
                incr failures;
                Printf.eprintf "%s error: %s\n" q msg
            | exception e ->
                incr failures;
                Printf.eprintf "%s error: %s\n" q (Printexc.to_string e))
          queries
      done;
      match sink with
      | Some _ -> ()
      | None ->
          let events = Obs.drain () in
          overwritten := Obs.dropped ();
          List.iter (fun e -> print_endline (render e)) events;
          drained := Some (List.length events));
  let drained = !drained in
  let overwritten = !overwritten in
  let sampled = Obs.sampled_out () in
  Obs.reset ();
  (match drained with
  | Some n ->
      Printf.eprintf "-- %d events drained (%d overwritten, %d sampled out)\n" n overwritten
        sampled
  | None -> Printf.eprintf "-- follow finished (%d events sampled out)\n" sampled);
  if !failures > 0 then begin
    Printf.eprintf "%d of %d queries failed\n" !failures (List.length queries * max 1 repeat);
    exit 1
  end

let events_cmd =
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Query batch, one XPath per line ('#' starts a comment). Default: stdin.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "r"; "repeat" ] ~docv:"N" ~doc:"Run the batch N times.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Render events as JSON lines.") in
  let follow_arg =
    Arg.(value & flag
         & info [ "follow" ]
             ~doc:"Stream events live as the batch runs instead of draining the ring buffer \
                   at the end.")
  in
  let slow_ms_arg =
    Arg.(value & opt float 0.0
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-query threshold in milliseconds (default: the service default, 100).")
  in
  let sample_arg =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "sample" ] ~docv:"CATEGORY=N"
             ~doc:"Keep one in N events of CATEGORY (repeatable).")
  in
  let ring_arg =
    Arg.(value & opt int Obs.default_ring_capacity
         & info [ "ring" ] ~docv:"N" ~doc:"Ring buffer capacity.")
  in
  Cmd.v
    (Cmd.info "events"
       ~doc:"Run a query batch with the telemetry bus attached and print its events")
    Term.(const run_events $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ queries_arg $ repeat_arg
          $ no_optimize_arg $ json_arg $ follow_arg $ slow_ms_arg $ sample_arg $ ring_arg)

(* ---- trace: run a batch and export a Chrome trace_event file ---- *)

let run_trace file xmark_mb snapshot data_dir queries_file repeat no_optimize output samples =
  handle_parse_errors @@ fun () ->
  let store, doc = input_doc file xmark_mb snapshot data_dir in
  let service = Vamana_service.Service.create ~optimize:(not no_optimize) store in
  let queries = List.filter is_query (read_queries queries_file) in
  if queries = [] then begin
    Printf.eprintf "no queries (one XPath per line; '#' comments)\n";
    exit 1
  end;
  Obs.reset ();
  List.iter (fun (cat, n) -> Obs.set_sample_rate cat n) samples;
  let events = ref [] in
  let sink = Obs.attach_sink (fun e -> events := e :: !events) in
  let failures = ref 0 in
  Fun.protect
    ~finally:(fun () -> Obs.detach_sink sink)
    (fun () ->
      for _round = 1 to max 1 repeat do
        List.iter
          (fun q ->
            match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
            | Ok _ -> ()
            | Error msg ->
                incr failures;
                Printf.eprintf "%s error: %s\n" q msg
            | exception e ->
                incr failures;
                Printf.eprintf "%s error: %s\n" q (Printexc.to_string e))
          queries
      done);
  Obs.reset ();
  let trace = Obs.Trace.to_chrome (List.rev !events) in
  (match output with
  | Some path ->
      write_atomic path trace;
      Printf.eprintf "wrote %d trace events to %s (open in Perfetto / chrome://tracing)\n"
        (List.length !events) path
  | None -> print_endline trace);
  if !failures > 0 then begin
    Printf.eprintf "%d of %d queries failed\n" !failures (List.length queries * max 1 repeat);
    exit 1
  end

let trace_cmd =
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Query batch, one XPath per line ('#' starts a comment). Default: stdin.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "r"; "repeat" ] ~docv:"N" ~doc:"Run the batch N times.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Trace file to write (default: stdout).")
  in
  let sample_arg =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "sample" ] ~docv:"CATEGORY=N"
             ~doc:"Keep one in N events of CATEGORY (repeatable).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a query batch with telemetry on and export it as Chrome trace_event JSON \
             — open the file in Perfetto (ui.perfetto.dev) or chrome://tracing")
    Term.(const run_trace $ file_arg $ xmark_arg $ snapshot_arg $ data_dir_arg $ queries_arg
          $ repeat_arg $ no_optimize_arg $ out_arg $ sample_arg)

(* ---- report: aggregate the flight recorder ---- *)

let run_report data_dir top =
  let module F = Storage.Flight in
  let module H = Storage.Stats.Histogram in
  let entries = F.read_dir ~dir:data_dir in
  if entries = [] then begin
    Printf.eprintf "no flight records under %s (serve with -d to record queries)\n" data_dir;
    exit 1
  end;
  let ends = List.filter_map (function F.End e -> Some e | F.Begin _ -> None) entries in
  let inflight = F.in_flight entries in
  let total = List.length ends in
  let errs = List.length (List.filter (fun (e : F.query_record) -> not e.F.ok) ends) in
  let sum_us =
    List.fold_left (fun acc (e : F.query_record) -> acc + e.F.latency_us) 0 ends
  in
  let sum_pages =
    List.fold_left (fun acc (e : F.query_record) -> acc + e.F.pages_read) 0 ends
  in
  let sampled = List.length (List.filter (fun (e : F.query_record) -> e.F.sampled) ends) in
  Printf.printf "== flight report (%s) ==\n" data_dir;
  Printf.printf "completed queries  %d (%d errors)\n" total errs;
  Printf.printf "total latency      %.3f ms\n" (float_of_int sum_us /. 1000.);
  Printf.printf "total pages read   %d\n" sum_pages;
  Printf.printf "sampled (health)   %d\n" sampled;
  let clip s n = if String.length s > n then String.sub s 0 (n - 3) ^ "..." else s in
  let top_section title key render =
    let sorted =
      List.stable_sort (fun a b -> compare (key b) (key a)) ends
    in
    let shown = List.filteri (fun i _ -> i < top) sorted in
    Printf.printf "\n== top %d by %s ==\n" (List.length shown) title;
    List.iter render shown
  in
  top_section "latency"
    (fun (e : F.query_record) -> e.F.latency_us)
    (fun (e : F.query_record) ->
      Printf.printf "%10.3f ms  qid %-6d %-6s %8d pages %8d results  %s\n"
        (float_of_int e.F.latency_us /. 1000.)
        e.F.qid e.F.cache e.F.pages_read e.F.results (clip e.F.source 44));
  top_section "pages read"
    (fun (e : F.query_record) -> e.F.pages_read)
    (fun (e : F.query_record) ->
      Printf.printf "%8d pages  qid %-6d %-6s %10.3f ms %6d wal_bytes %3d fsyncs  %s\n"
        e.F.pages_read e.F.qid e.F.cache
        (float_of_int e.F.latency_us /. 1000.)
        e.F.wal_bytes e.F.fsyncs (clip e.F.source 44));
  (* drifting plans, newest record per shape: which cached plans were
     aging when the recorder last saw them *)
  let drifting = Hashtbl.create 16 in
  List.iter
    (fun (e : F.query_record) ->
      if e.F.drift > 0.0 then
        let shape = Vamana_service.Service.normalize e.F.source in
        match Hashtbl.find_opt drifting shape with
        | Some (prev : F.query_record) when prev.F.qid >= e.F.qid -> ()
        | _ -> Hashtbl.replace drifting shape e)
    ends;
  let drift_rows =
    Hashtbl.fold (fun shape e acc -> (shape, e) :: acc) drifting []
    |> List.sort (fun (_, (a : F.query_record)) (_, (b : F.query_record)) ->
           compare b.F.drift a.F.drift)
    |> List.filteri (fun i _ -> i < top)
  in
  if drift_rows <> [] then begin
    Printf.printf "\n== top %d by cost drift (last recorded score per shape) ==\n"
      (List.length drift_rows);
    List.iter
      (fun (shape, (e : F.query_record)) ->
        Printf.printf "%8.3f drift  qid %-6d %-6s %10.3f ms  %s\n" e.F.drift e.F.qid e.F.cache
          (float_of_int e.F.latency_us /. 1000.)
          (clip shape 44))
      drift_rows
  end;
  (* per-shape percentiles: group by the service's cache-key
     normalization, so "//person / address" and "//person/address"
     aggregate as one shape *)
  let shapes = Hashtbl.create 32 in
  List.iter
    (fun (e : F.query_record) ->
      let shape = Vamana_service.Service.normalize e.F.source in
      let h =
        match Hashtbl.find_opt shapes shape with
        | Some h -> h
        | None ->
            let h = H.create () in
            Hashtbl.add shapes shape h;
            h
      in
      H.observe h (float_of_int e.F.latency_us /. 1e6))
    ends;
  let rows =
    Hashtbl.fold (fun shape h acc -> (shape, h) :: acc) shapes []
    |> List.sort (fun (_, a) (_, b) -> compare (H.sum b) (H.sum a))
  in
  Printf.printf "\n== per-shape latency (%d shapes) ==\n" (List.length rows);
  Printf.printf "%-44s %6s %10s %10s %10s %10s\n" "shape" "n" "p50 ms" "p95 ms" "p99 ms"
    "max ms";
  List.iter
    (fun (shape, h) ->
      Printf.printf "%-44s %6d %10.3f %10.3f %10.3f %10.3f\n" (clip shape 44) (H.count h)
        (H.percentile h 50.0 *. 1000.) (H.percentile h 95.0 *. 1000.)
        (H.percentile h 99.0 *. 1000.) (H.max_value h *. 1000.))
    rows;
  (* queries that began but never ended: what was running at the crash *)
  if inflight <> [] then begin
    Printf.printf "\n== in flight at last shutdown (%d) ==\n" (List.length inflight);
    List.iter
      (fun (b : F.begin_record) ->
        Printf.printf "qid %-6d epoch %-6d %s\n" b.F.b_qid b.F.b_epoch (clip b.F.b_source 60))
      inflight
  end

let report_cmd =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "d"; "data-dir" ] ~docv:"DIR" ~doc:"Data directory holding flight.log.")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows per top-N section.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Aggregate the query flight recorder: top-N by latency and by I/O, per-shape \
             latency percentiles, and the queries in flight when the process last died")
    Term.(const run_report $ dir $ top_arg)

let run_save file xmark_mb data_dir output =
  handle_parse_errors @@ fun () ->
  let store, _ = input_doc file xmark_mb None data_dir in
  Store.save_file store output;
  Printf.eprintf "saved store snapshot to %s\n" output

let save_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"SNAP" ~doc:"Snapshot path.")
  in
  Cmd.v (Cmd.info "save" ~doc:"Build a store and write a binary snapshot")
    Term.(const run_save $ file_arg $ xmark_arg $ data_dir_arg $ out)

(* ---- snapshot: whole-store save/restore, including across backends ---- *)

let run_snapshot_save file xmark_mb data_dir output =
  handle_parse_errors @@ fun () ->
  let store, _ = input_doc file xmark_mb None data_dir in
  Store.save_file store output;
  Printf.eprintf "saved store snapshot to %s\n" output;
  Store.close store

let run_snapshot_load snap data_dir =
  handle_parse_errors @@ fun () ->
  let store = Store.load_file ~backend:(Store.File { dir = data_dir }) snap in
  let docs = Store.documents store in
  Printf.eprintf "restored %d document(s) (%d records) from %s into %s\n" (List.length docs)
    (Store.total_records store) snap data_dir;
  Store.close store

let snapshot_cmd =
  let save =
    let out =
      Arg.(required & opt (some string) None
           & info [ "o"; "output" ] ~docv:"SNAP" ~doc:"Snapshot path.")
    in
    Cmd.v
      (Cmd.info "save"
         ~doc:"Write a whole-store binary snapshot (from a file, generated XMark data, or \
               an existing $(b,--data-dir) store)")
      Term.(const run_snapshot_save $ file_arg $ xmark_arg $ data_dir_arg $ out)
  in
  let load =
    let snap =
      Arg.(required & pos 0 (some file) None & info [] ~docv:"SNAP" ~doc:"Snapshot to restore.")
    in
    let dir =
      Arg.(required & opt (some string) None
           & info [ "d"; "data-dir" ] ~docv:"DIR"
               ~doc:"Directory to materialize the durable store in.")
    in
    Cmd.v
      (Cmd.info "load"
         ~doc:"Restore a snapshot into a fresh durable store: the rebuild runs through the \
               bulk-ingest path (no WAL traffic) and ends with one checkpoint")
      Term.(const run_snapshot_load $ snap $ dir)
  in
  Cmd.group (Cmd.info "snapshot" ~doc:"Whole-store snapshot save/restore") [ save; load ]

(* ---- churn: sustained update loop against a durable store (crash-test target) ---- *)

let run_churn data_dir iters report =
  handle_parse_errors @@ fun () ->
  if not (Storage.Disk.is_store ~dir:data_dir) then begin
    Printf.eprintf "no store at %s (build one first, e.g. vamana snapshot save or -x with -d)\n"
      data_dir;
    exit 1
  end;
  let store = Store.open_file ~dir:data_dir () in
  report_recovery store;
  let doc = first_doc store in
  let parent =
    match Store.root_element_key doc store with
    | Some k -> k
    | None -> failwith "document has no root element"
  in
  let inserted = Queue.create () in
  let i = ref 0 in
  while iters = 0 || !i < iters do
    incr i;
    let key =
      Store.insert_element store ~parent "churn"
        [ ("i", string_of_int !i) ]
        (Some (Printf.sprintf "payload-%d" !i))
    in
    Queue.push key inserted;
    if !i mod 3 = 0 then ignore (Store.delete_subtree store (Queue.pop inserted));
    if !i mod report = 0 then begin
      Printf.printf "churn: %d iterations, epoch %d, wal %d bytes\n" !i (Store.epoch store)
        (Option.value ~default:0 (Store.disk_wal_bytes store));
      flush stdout
    end
  done;
  Store.close store;
  Printf.printf "churn: done, %d iterations, epoch %d\n" !i (Store.epoch store)

let churn_cmd =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "d"; "data-dir" ] ~docv:"DIR" ~doc:"Existing durable store to churn.")
  in
  let iters =
    Arg.(value & opt int 0
         & info [ "iters" ] ~docv:"N" ~doc:"Stop after N updates (default: run until killed).")
  in
  let report =
    Arg.(value & opt int 100 & info [ "report" ] ~docv:"N" ~doc:"Progress line every N updates.")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Run a sustained insert/delete loop against a durable store — every epoch commits \
             through the WAL, so killing this process at any point must be recoverable \
             ($(b,vamana fsck) verifies)")
    Term.(const run_churn $ dir $ iters $ report)

(* ---- fsck: reopen, recover, and cross-check a durable store ---- *)

let fsck_corpus = [ "/*"; "//*"; "//text()"; "//*/*"; "//*[@i]"; "//churn/ancestor::*" ]

let run_fsck data_dir queries_file =
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> incr failures; Printf.printf "FAIL %s\n" m) fmt in
  let pass fmt = Printf.ksprintf (fun m -> Printf.printf "ok   %s\n" m) fmt in
  let store =
    try Store.open_file ~dir:data_dir ()
    with Storage.Disk.Corrupt msg ->
      Printf.printf "FAIL open: corrupt store: %s\n" msg;
      exit 1
  in
  report_recovery store;
  pass "open: %d document(s), %d records, epoch %d" (List.length (Store.documents store))
    (Store.total_records store) (Store.epoch store);
  (try
     Store.validate store;
     pass "validate: indexes and counters mutually consistent"
   with Failure msg -> fail "validate: %s" msg);
  let module S = Mass.Synopsis in
  (match S.verify store (S.for_store store) with
  | Ok () -> pass "synopsis: consistent with a fresh store scan"
  | Error msg -> fail "synopsis: %s" msg);
  let queries =
    match queries_file with
    | Some path -> List.filter is_query (read_queries (Some path))
    | None -> fsck_corpus
  in
  let doc = first_doc store in
  List.iter
    (fun q ->
      let run optimize =
        match Vamana.Engine.query ~optimize store ~context:doc.Store.doc_key q with
        | Ok r -> Ok (List.map Flex.to_string r.Vamana.Engine.keys)
        | Error msg -> Error msg
      in
      match (run true, run false) with
      | Ok a, Ok b when a = b -> pass "differential: %s (%d keys)" q (List.length a)
      | Ok a, Ok b -> fail "differential: %s — optimized %d keys, unoptimized %d" q
                        (List.length a) (List.length b)
      | Error m, Error _ -> pass "differential: %s (not executable: %s)" q m
      | Error m, Ok _ | Ok _, Error m -> fail "differential: %s — one mode errored: %s" q m)
    queries;
  (* flight recorder: informational, not a failure — a begin with no end
     names the query that was running when the process last died *)
  (match Storage.Flight.read_dir ~dir:data_dir with
  | [] -> ()
  | entries ->
      let ends =
        List.length
          (List.filter_map
             (function Storage.Flight.End e -> Some e | Storage.Flight.Begin _ -> None)
             entries)
      in
      pass "flight: %d completed query record(s) intact" ends;
      List.iter
        (fun (b : Storage.Flight.begin_record) ->
          Printf.printf "     in flight at crash: qid %d epoch %d %s\n" b.Storage.Flight.b_qid
            b.Storage.Flight.b_epoch b.Storage.Flight.b_source)
        (Storage.Flight.in_flight entries));
  Store.close store;
  if !failures > 0 then begin
    Printf.printf "fsck: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else Printf.printf "fsck: all checks passed\n"

let fsck_cmd =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "d"; "data-dir" ] ~docv:"DIR" ~doc:"Durable store to check.")
  in
  let queries_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "queries" ] ~docv:"FILE"
             ~doc:"Differential query corpus, one XPath per line (default: a built-in set).")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Reopen a durable store (running crash recovery), then cross-check the three \
             indexes, the path synopsis, and an optimized-vs-unoptimized query differential; \
             exits non-zero on any inconsistency")
    Term.(const run_fsck $ dir $ queries_arg)

(* ---- prove: small-scope bounded soundness prover ---- *)

let run_prove depth fanout tags texts max_nodes steps random random_depth seed json
    mutant_name list_mutants replay out =
  handle_parse_errors @@ fun () ->
  let module SC = Vamana.Smallcheck in
  let module J = Vamana.Profile.Json in
  if list_mutants then begin
    List.iter
      (fun m -> Printf.printf "%-22s expected check %s\n" (SC.subject_name m)
          (Option.value ~default:"-" (SC.subject_expected_check m)))
      SC.mutants;
    exit 0
  end;
  let subject_of_name name =
    match SC.find_mutant name with
    | Some m -> m
    | None ->
        Printf.eprintf "unknown mutant %S (see --list-mutants)\n" name;
        exit 2
  in
  let emit doc = if json then print_endline (J.to_string doc) in
  let write_out s =
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc s;
        close_out oc
  in
  match replay with
  | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      (match SC.replay_of_sexp src with
       | Error msg ->
           Printf.eprintf "replay parse error: %s\n" msg;
           exit 2
       | Ok (doc, query, mutant) ->
           (* --mutant overrides the subject recorded in the artifact *)
           let subject =
             Option.map subject_of_name
               (match mutant_name with Some _ -> mutant_name | None -> mutant)
           in
           let cxs = SC.check_pair ?subject ~doc ~query () in
           (match cxs with
            | [] ->
                if json then emit (J.Obj [ ("counterexamples", J.Arr []) ])
                else Printf.printf "replay: doc %s query %s — all checks pass\n" doc query;
                exit 0
            | cx :: _ ->
                if json then
                  emit (J.Obj [ ("counterexamples",
                                 J.Arr [ J.Obj [ ("check", J.Str cx.SC.cx_check);
                                                 ("detail", J.Str cx.SC.cx_detail) ] ]) ])
                else begin
                  Printf.printf "replay: counterexample reproduced\n";
                  print_string (SC.counterexample_to_sexp cx)
                end;
                exit 1))
  | None ->
      let bounds =
        { SC.depth = Option.value ~default:SC.default_bounds.SC.depth depth;
          fanout = Option.value ~default:SC.default_bounds.SC.fanout fanout;
          tags = Option.value ~default:SC.default_bounds.SC.tags tags;
          texts = Option.value ~default:SC.default_bounds.SC.texts texts;
          max_nodes = Option.value ~default:SC.default_bounds.SC.max_nodes max_nodes;
          steps = Option.value ~default:SC.default_bounds.SC.steps steps }
      in
      let random_bounds =
        { SC.ci_random_bounds with
          SC.depth = Option.value ~default:SC.ci_random_bounds.SC.depth random_depth }
      in
      let subject = Option.map subject_of_name mutant_name in
      let report = SC.prove ?subject ~random ~random_bounds ~seed bounds in
      if json then print_endline (J.to_string (SC.report_to_json report))
      else print_string (SC.report_to_string report);
      (match report.SC.rp_counterexamples with
       | [] -> ()
       | cx :: _ ->
           write_out (SC.counterexample_to_sexp cx);
           exit 1)

let prove_cmd =
  let module SC = Vamana.Smallcheck in
  let opt_int names docv doc =
    Arg.(value & opt (some int) None & info names ~docv ~doc)
  in
  let depth = opt_int [ "depth" ] "D" "Maximum element nesting depth (default 3)." in
  let fanout = opt_int [ "fanout" ] "F" "Maximum children per element (default 2)." in
  let tags = opt_int [ "tags" ] "K" "Tag alphabet size (default 2)." in
  let texts = opt_int [ "texts" ] "T" "Text-value domain size (default 1)." in
  let max_nodes = opt_int [ "max-nodes" ] "N" "Per-document node budget (default 4)." in
  let steps = opt_int [ "steps" ] "S" "Maximum location-path step count (default 2)." in
  let random =
    Arg.(value & opt int 0
         & info [ "random" ] ~docv:"N"
             ~doc:"Additionally check N randomized (document, plan) pairs drawn from deeper \
                   bounds than the exhaustive sweep.")
  in
  let random_depth =
    opt_int [ "random-depth" ] "D" "Element depth bound of the randomized layer (default 5)."
  in
  let seed =
    Arg.(value & opt int SC.ci_seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the randomized layer.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a single JSON document.")
  in
  let mutant_arg =
    Arg.(value & opt (some string) None
         & info [ "mutant" ] ~docv:"NAME"
             ~doc:"Verify a seeded-unsoundness mutant instead of the real library (the prover \
                   proving itself): the run must produce counterexamples.")
  in
  let list_mutants_arg =
    Arg.(value & flag & info [ "list-mutants" ] ~doc:"List the mutant catalogue and exit.")
  in
  let replay_arg =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Re-check a single shrunk counterexample S-expression instead of sweeping.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the first counterexample's replayable S-expression to FILE.")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Small-scope soundness prover: exhaustively enumerate every XML document and \
             every XPath plan within small bounds and check rewrite-rule soundness, \
             analysis-claim soundness, and cost-model invariants on every pair. \
             Counterexamples are shrunk to a minimum and rendered as replayable \
             S-expressions. Exits non-zero if any counterexample is found.")
    Term.(const run_prove $ depth $ fanout $ tags $ texts $ max_nodes $ steps $ random
          $ random_depth $ seed $ json_arg $ mutant_arg $ list_mutants_arg $ replay_arg
          $ out_arg)

let () =
  let info = Cmd.info "vamana" ~version:"1.0.0" ~doc:"Cost-driven XPath engine over the MASS storage structure" in
  exit (Cmd.eval (Cmd.group info [ query_cmd; xquery_cmd; explain_cmd; lint_cmd; footprint_cmd; prove_cmd; synopsis_cmd; stats_cmd; generate_cmd; save_cmd; snapshot_cmd; churn_cmd; fsck_cmd; serve_cmd; health_cmd; events_cmd; trace_cmd; report_cmd ]))
