(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VIII).

     dune exec bench/main.exe                 -- everything, default sizes
     dune exec bench/main.exe -- fig12        -- one figure (fig12..fig16)
     dune exec bench/main.exe -- cost         -- Figures 6 and 7 (cost annotations)
     dune exec bench/main.exe -- opt          -- Figures 5, 8, 9, 11 (optimizer traces)
     dune exec bench/main.exe -- overhead     -- §VIII optimization-overhead claim
     dune exec bench/main.exe -- ablation     -- per-rewrite-rule contribution
     dune exec bench/main.exe -- io           -- page reads per engine (index-only property)
     dune exec bench/main.exe -- staleness    -- live statistics vs a frozen dictionary
     dune exec bench/main.exe -- service      -- warm-vs-cold cache latency (service layer)
     dune exec bench/main.exe -- drift        -- plan-health drift detection + replan recovery
     dune exec bench/main.exe -- interfere    -- result-cache invalidation: epoch vs footprint
     dune exec bench/main.exe -- qerror       -- est-vs-actual cardinality -> BENCH_qerror.json
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- disk [--sizes ...]
                                              -- file backend, constrained pool (real I/O)
     dune exec bench/main.exe -- baseline     -- write BENCH_baseline.json (commit it)
     dune exec bench/main.exe -- regress [--baseline FILE] [--inject-latency F]
                                              -- gate this build against the baseline
     dune exec bench/main.exe -- all --sizes 1,5,10,20,30   -- full sweep

   Engines (stand-ins per DESIGN.md §4):
     scan    sequential-scan evaluator   (Galax)
     dom     DOM traversal, parse+build charged per query (Jaxen)
     join    structural path-join engine (eXist)
     vqp     VAMANA default plan
     vqp-opt VAMANA optimized plan

   Engine drop-outs mirror the paper: the DOM engine refuses documents
   above its node budget (Jaxen >= 10 MB), the join engine refuses
   documents above its record cap (eXist >= 20 MB) and has no sibling /
   following / preceding axes (no Q4 data points), and the scan engine is
   given a wall-clock budget per query (the paper's two-hour cutoff,
   scaled down). *)

module Store = Mass.Store

let queries =
  [ ("Q1", "//person/address");
    ("Q2", "//watches/watch/ancestor::person");
    ("Q3", "/descendant::name/parent::*/self::person/address");
    ("Q4", "//itemref/following-sibling::price/parent::*");
    ("Q5", "//province[text()='Vermont']/ancestor::person") ]

let figure_of_query = [ ("Q1", 12); ("Q2", 13); ("Q3", 14); ("Q4", 15); ("Q5", 16) ]

(* caps mirroring the paper's reported limits, in generated-document
   terms: ~13k records per generated MB *)
let dom_node_budget = 130_000 (* Jaxen: fails >= 10 MB *)
let join_record_cap = 260_000 (* eXist: fails >= 20 MB *)
let scan_time_budget = 120.0 (* seconds; the paper's 2 h cutoff, scaled *)

type sized = {
  mb : float;
  store : Store.t;
  doc : Store.doc;
  source : string;
}

(* every corpus query must lint clean of Error-severity diagnostics on
   the document it is about to be measured on — a malformed or
   semantically suspect plan would make the numbers meaningless *)
let assert_lint_clean store (doc : Store.doc) =
  List.iter
    (fun (label, q) ->
      match Vamana.Engine.prepare store ~scope:(Some doc.Store.doc_key) q with
      | Error e -> failwith (label ^ ": " ^ e)
      | Ok p ->
          List.iter
            (fun (a : Vamana.Analysis.t) ->
              match Vamana.Analysis.errors a with
              | [] -> ()
              | d :: _ ->
                  failwith
                    (Printf.sprintf "%s: lint error: %s" label
                       (Vamana.Analysis.diagnostic_to_string d)))
            p.Vamana.Engine.analyses)
    queries

let build_sized mb =
  let store = Store.create ~pool_pages:65536 () in
  let tree = Xmark.generate mb in
  let doc = Store.load store ~name:"auction.xml" tree in
  assert_lint_clean store doc;
  { mb; store; doc; source = Xml.Writer.to_string tree }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* very fast runs are repeated for a stable reading *)
let measure f =
  let r, t = time f in
  if t >= 0.05 then (r, t)
  else begin
    let n = 9 in
    let _, total =
      time (fun () ->
          for _ = 1 to n do
            ignore (f ())
          done)
    in
    (r, (t +. total) /. float_of_int (n + 1))
  end

type cell = Time of float | Dnf of string

let pp_cell = function
  | Time t -> Printf.sprintf "%10.3f" t
  | Dnf reason -> Printf.sprintf "%10s" ("DNF:" ^ reason)

(* ---- engine runners ---- *)

let run_scan sized query =
  let scan = Baselines.Scan_engine.create sized.store sized.doc in
  let deadline = Unix.gettimeofday () +. scan_time_budget in
  let result, t = time (fun () -> Baselines.Scan_engine.query_ranks scan query) in
  match result with
  | Ok _ when Unix.gettimeofday () <= deadline -> Time t
  | Ok _ -> Dnf "time"
  | Error _ -> Dnf "unsup"

let run_dom sized query =
  (* a file-based DOM engine pays parse + DOM build on every query *)
  match
    measure (fun () ->
        let d =
          Baselines.Dom_engine.create ~node_budget:dom_node_budget
            (Xml.Parser.parse sized.source)
        in
        Baselines.Dom_engine.query_ranks d query)
  with
  | Ok _, t -> Time t
  | Error _, _ -> Dnf "unsup"
  | exception Baselines.Dom_engine.Document_too_large _ -> Dnf "mem"

let run_join sized query =
  match Baselines.Join_engine.create ~record_cap:join_record_cap sized.store sized.doc with
  | exception Baselines.Join_engine.Document_too_large _ -> Dnf "size"
  | join -> (
      match measure (fun () -> Baselines.Join_engine.query_ranks join query) with
      | Ok _, t -> Time t
      | Error _, _ -> Dnf "axis")

let run_vamana ~optimize sized query =
  match
    measure (fun () ->
        Vamana.Engine.query ~optimize sized.store ~context:sized.doc.Store.doc_key query)
  with
  | Ok _, t -> Time t
  | Error e, _ -> Dnf e

let engines =
  [ ("scan", run_scan); ("dom", run_dom); ("join", run_join);
    ("vqp", run_vamana ~optimize:false); ("vqp-opt", run_vamana ~optimize:true) ]

let engine_index name =
  let rec go i = function
    | (n, _) :: rest -> if String.equal n name then i else go (i + 1) rest
    | [] -> invalid_arg name
  in
  go 0 engines

(* ---- figures 12-16 ---- *)

let print_figure sizeds (label, query) =
  let fig = List.assoc label figure_of_query in
  Printf.printf "\n== Figure %d: %s  %s — execution time (seconds) ==\n" fig label query;
  Printf.printf "%8s" "size(MB)";
  List.iter (fun (name, _) -> Printf.printf "%11s" name) engines;
  print_newline ();
  let rows =
    List.map
      (fun sized ->
        let cells = List.map (fun (_, runner) -> runner sized query) engines in
        Printf.printf "%8.0f" sized.mb;
        List.iter (fun c -> Printf.printf " %s" (pp_cell c)) cells;
        print_newline ();
        (sized.mb, cells))
      sizeds
  in
  (* shape checks against the paper *)
  let get name cells = List.nth cells (engine_index name) in
  let problems = ref [] in
  List.iter
    (fun (mb, cells) ->
      (match (get "vqp" cells, get "vqp-opt" cells) with
      | Time a, Time b when b > a +. 1e-4 ->
          problems := Printf.sprintf "%.0fMB: VQP-OPT slower than VQP" mb :: !problems
      | _ -> ());
      match (get "vqp-opt" cells, get "scan" cells, get "dom" cells) with
      | Time v, Time s, Time d when v > s || v > d ->
          problems := Printf.sprintf "%.0fMB: VAMANA-OPT not fastest" mb :: !problems
      | _ -> ())
    rows;
  if label = "Q4" then begin
    let all_dnf =
      List.for_all
        (fun (_, cells) -> match get "join" cells with Dnf _ -> true | Time _ -> false)
        rows
    in
    if not all_dnf then
      problems := "Q4: join engine unexpectedly ran a sibling axis" :: !problems
  end;
  match !problems with
  | [] ->
      Printf.printf "   [shape OK: VQP-OPT <= VQP; index plans fastest%s]\n"
        (if label = "Q4" then "; join engine DNF on sibling axis as in the paper" else "")
  | ps -> List.iter (Printf.printf "   [shape WARNING: %s]\n") ps

(* ---- cost figures (6 and 7) ---- *)

let print_cost () =
  Printf.printf "\n== Figures 6 & 7: cost annotations on the 10 MB document ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  let count n = Store.count_test store ~principal:Mass.Record.Element (Xpath.Ast.Name_test n) in
  Printf.printf "paper: COUNT(name)=4825 COUNT(person)=2550 COUNT(address)=1256 TC('Yung Flach')=1\n";
  Printf.printf "ours : COUNT(name)=%d COUNT(person)=%d COUNT(address)=%d TC('Yung Flach')=%d\n\n"
    (count "name") (count "person") (count "address")
    (Store.text_value_count store "Yung Flach");
  List.iter
    (fun (fig, q) ->
      Printf.printf "-- %s --\nQuery: %s\n" fig q;
      match Vamana.Engine.explain store doc q with
      | Ok text -> print_string text
      | Error e -> Printf.printf "error: %s\n" e)
    [ ("Figure 6 (running example Q1)", "descendant::name/parent::*/self::person/address");
      ("Figure 7 (running example Q2)",
       "//name[text()='Yung Flach']/following-sibling::emailaddress") ]

(* ---- optimizer traces (figures 5, 8, 9, 11) ---- *)

let print_opt () =
  Printf.printf "\n== Figures 5, 8, 9, 11: optimizer transformations (10 MB document) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  List.iter
    (fun (what, q) ->
      Printf.printf "\n-- %s --\nQuery: %s\n" what q;
      match Vamana.Engine.explain store doc q with
      | Ok text -> print_string text
      | Error e -> Printf.printf "error: %s\n" e)
    [ ("Figures 5+8+11: clean-up, reverse-axis elimination, push-down",
       "descendant::name/parent::*/self::person/address");
      ("Figure 9: value-index rewrite",
       "//name[text()='Yung Flach']/following-sibling::emailaddress");
      ("§VIII Q2: duplicate elimination", "//watches/watch/ancestor::person") ]

(* ---- optimization overhead (§VIII: "negligible") ---- *)

let print_overhead () =
  Printf.printf "\n== Optimization overhead on the 10 MB document (paper §VIII) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  Printf.printf "%-4s %12s %14s %14s %10s %10s\n" "Q" "opt(ms)" "exec VQP(ms)" "exec OPT(ms)"
    "speedup" "ovh(%)";
  List.iter
    (fun (label, q) ->
      let run optimize =
        match Vamana.Engine.query ~optimize store ~context:doc.Store.doc_key q with
        | Ok r -> r
        | Error e -> failwith e
      in
      let d = run false and o = run true in
      let speedup = d.Vamana.Engine.execute_time /. Float.max o.Vamana.Engine.execute_time 1e-9 in
      let overhead =
        100. *. o.Vamana.Engine.optimize_time /. Float.max d.Vamana.Engine.execute_time 1e-9
      in
      Printf.printf "%-4s %12.3f %14.2f %14.2f %9.1fx %10.2f\n" label
        (o.Vamana.Engine.optimize_time *. 1000.)
        (d.Vamana.Engine.execute_time *. 1000.)
        (o.Vamana.Engine.execute_time *. 1000.)
        speedup overhead)
    queries;
  Printf.printf "(overhead = optimizer time as %% of default-plan execution time)\n"


(* ---- ablation: contribution of each transformation rule ---- *)

let print_ablation () =
  Printf.printf "\n== Ablation: optimizer with one rule disabled (10 MB, exec ms) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  let variants =
    ("full library", Vamana.Rewrite.cost_rules)
    :: ("no rewriting", [])
    :: List.map
         (fun (r : Vamana.Rewrite.rule) ->
           ( "without " ^ r.Vamana.Rewrite.name,
             List.filter
               (fun (r' : Vamana.Rewrite.rule) ->
                 r'.Vamana.Rewrite.name <> r.Vamana.Rewrite.name)
               Vamana.Rewrite.cost_rules ))
         Vamana.Rewrite.cost_rules
  in
  Printf.printf "%-26s" "variant";
  List.iter (fun (l, _) -> Printf.printf "%10s" l) queries;
  print_newline ();
  List.iter
    (fun (vname, rules) ->
      Printf.printf "%-26s" vname;
      List.iter
        (fun (_, q) ->
          let plan =
            match Vamana.Compile.compile_query q with Ok p -> p | Error e -> failwith e
          in
          let o = Vamana.Optimizer.optimize ~rules store ~scope:(Some doc.Store.doc_key) plan in
          let _, t =
            measure (fun () -> Vamana.Exec.run store ~context:doc.Store.doc_key o.Vamana.Optimizer.plan)
          in
          Printf.printf "%10.2f" (t *. 1000.))
        queries;
      print_newline ())
    variants;
  Printf.printf "(each cell: execution time of the plan produced by that rule set)\n"

(* ---- page I/O: the index-only property, quantified ---- *)

let print_io () =
  Printf.printf "\n== Page reads per engine on the 10 MB document (logical reads) ==\n";
  let sized = build_sized 10.0 in
  let total = Store.total_records sized.store in
  Printf.printf "store: %d records, %d pages\n" total
    ((Store.statistics sized.store).Store.doc_index_pages);
  Printf.printf "%-4s %12s %12s %12s %12s\n" "Q" "scan" "join" "vqp" "vqp-opt";
  List.iter
    (fun (label, q) ->
      let reads f =
        Store.reset_io_stats sized.store;
        match f () with
        | Ok _ -> Printf.sprintf "%d" (Store.io_stats sized.store).Storage.Stats.logical_reads
        | Error _ -> "DNF"
      in
      let scan_reads =
        reads (fun () ->
            Baselines.Scan_engine.query_ranks (Baselines.Scan_engine.create sized.store sized.doc) q)
      in
      let join_reads =
        reads (fun () ->
            Baselines.Join_engine.query_ranks
              (Baselines.Join_engine.create ~record_cap:max_int sized.store sized.doc)
              q)
      in
      let vqp_reads =
        reads (fun () -> Vamana.Engine.query ~optimize:false sized.store ~context:sized.doc.Store.doc_key q)
      in
      let opt_reads =
        reads (fun () -> Vamana.Engine.query ~optimize:true sized.store ~context:sized.doc.Store.doc_key q)
      in
      Printf.printf "%-4s %12s %12s %12s %12s\n" label scan_reads join_reads vqp_reads opt_reads)
    queries;
  Printf.printf
    "(optimized index-only plans touch a small fraction of the pages a scan reads)\n"

(* ---- durable backend: the scalability sweep when eviction costs file I/O ---- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let disk_pools = [ 512; 65536 ]

let print_disk sizes =
  Printf.printf "\n== Durable file backend: corpus batch with a constrained buffer pool ==\n";
  Printf.printf
    "(each size is bulk-loaded to disk once, then reopened cold per pool setting;\n\
    \ a %d-page pool is smaller than the clustered index beyond ~1 MB, so misses pay\n\
    \ real pread()s and evictions write dirty pages back)\n"
    (List.hd disk_pools);
  Printf.printf "%6s %9s | %6s %10s %10s %10s %6s | %10s %12s\n" "MB" "records" "pool"
    "batch(ms)" "logical" "physical" "hit" "preads" "read bytes";
  List.iter
    (fun mb ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "vamana_bench_disk_%d" (Unix.getpid ()))
      in
      rm_rf dir;
      let store = Store.create ~pool_pages:65536 ~backend:(Store.File { dir }) () in
      let records =
        let tree = Xmark.generate mb in
        ignore (Store.load store ~name:"auction.xml" tree);
        Store.total_records store
      in
      Store.close store;
      List.iter
        (fun pool ->
          let store = Store.open_file ~pool_pages:pool ~dir () in
          let doc = match Store.documents store with d :: _ -> d | [] -> assert false in
          let io0 =
            match Store.disk_io store with
            | Some io -> (io.Storage.Disk.data_reads, io.Storage.Disk.data_read_bytes)
            | None -> (0, 0)
          in
          Store.reset_io_stats store;
          let _, t =
            time (fun () ->
                List.iter
                  (fun (label, q) ->
                    match
                      Vamana.Engine.query ~optimize:true store ~context:doc.Store.doc_key q
                    with
                    | Ok r -> ignore r.Vamana.Engine.keys
                    | Error e -> failwith (label ^ ": " ^ e))
                  queries)
          in
          let io = Store.io_stats store in
          let preads, pread_bytes =
            match Store.disk_io store with
            | Some d -> (d.Storage.Disk.data_reads - fst io0, d.Storage.Disk.data_read_bytes - snd io0)
            | None -> (0, 0)
          in
          Printf.printf "%6.1f %9d | %6d %10.2f %10d %10d %5.1f%% | %10d %12d\n" mb records
            pool (t *. 1000.) io.Storage.Stats.logical_reads io.Storage.Stats.physical_reads
            (100. *. Storage.Stats.hit_ratio io) preads pread_bytes;
          Store.close store)
        disk_pools;
      rm_rf dir)
    sizes

(* ---- staleness study: live index statistics vs a frozen dictionary ---- *)

let print_staleness () =
  Printf.printf "\n== Staleness: live index statistics vs a frozen dictionary (paper §I/§II) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 2.0 in
  let frozen = Vamana.Frozen_stats.capture store in
  Printf.printf "captured dictionary: %d names, %d values\n"
    (Vamana.Frozen_stats.distinct_names frozen)
    (Vamana.Frozen_stats.distinct_values frozen);
  (* update workload: a Vermont population boom, and every watch removed *)
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> failwith e
  in
  let boom = 2000 in
  for i = 1 to boom do
    let p =
      Store.insert_element store ~parent:people "person"
        [ ("id", Printf.sprintf "newcomer%d" i) ] None
    in
    let a = Store.insert_element store ~parent:p "address" [] None in
    ignore (Store.insert_element store ~parent:a "province" [] (Some "Vermont"))
  done;
  (match Vamana.Engine.query_doc store doc "//watches" with
  | Ok r -> List.iter (fun k -> ignore (Store.delete_subtree store k)) r.Vamana.Engine.keys
  | Error e -> failwith e);
  Printf.printf "applied updates: +%d Vermont persons, all watches deleted\n\n" boom;
  let live = Vamana.Cost.live_statistics store in
  let stale = Vamana.Frozen_stats.source frozen in
  let scope = Some doc.Store.doc_key in
  Printf.printf "%-44s %10s %10s %10s\n" "query" "stale est" "live est" "actual";
  List.iter
    (fun q ->
      match Vamana.Compile.compile_query q with
      | Error e -> failwith e
      | Ok plan ->
          let plan = Vamana.Rewrite.apply_cleanup plan in
          let est stats =
            let costed = Vamana.Cost.estimate_with stats ~scope plan in
            (Hashtbl.find costed plan.Vamana.Plan.id).Vamana.Cost.output
          in
          let actual =
            List.length (Vamana.Exec.run store ~context:doc.Store.doc_key plan)
          in
          Printf.printf "%-44s %10d %10d %10d\n" q (est stale) (est live) actual)
    [ "//province[text()='Vermont']"; "//watches/watch"; "//person"; "//address" ];
  Printf.printf
    "(the live source tracks every update exactly; the dictionary keeps\n\
    \ pre-update numbers, the failure mode the paper's costing avoids)\n"

(* ---- service layer: warm-vs-cold cache latency ---- *)

let print_service () =
  Printf.printf "\n== Service layer: warm vs cold cache latency (10 MB, XMark query set) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  let service = Vamana_service.Service.create store in
  let run q =
    match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
    | Ok o -> o
    | Error e -> failwith e
  in
  let warm_rounds = 25 in
  Printf.printf "%-4s %12s %14s %14s %10s %10s\n" "Q" "cold(ms)" "warm plan(ms)" "warm full(ms)"
    "plan x" "full x";
  List.iter
    (fun (label, q) ->
      (* cold: first touch pays parse+compile+optimize+execute *)
      let cold = run q in
      let cold_ms = cold.Vamana_service.Service.total_time *. 1000. in
      (* warm plan cache only: re-execute the cached plan each round by
         disabling result reuse through a store-epoch-preserving flush of
         the result side — simplest is a second service without results *)
      let plan_service =
        Vamana_service.Service.create ~result_cache_capacity:0 store
      in
      let run_plan () =
        match Vamana_service.Service.query plan_service ~context:doc.Store.doc_key q with
        | Ok o -> o.Vamana_service.Service.total_time
        | Error e -> failwith e
      in
      let _cold_plan = run_plan () in
      let warm_plan =
        let total = ref 0.0 in
        for _ = 1 to warm_rounds do
          total := !total +. run_plan ()
        done;
        !total /. float_of_int warm_rounds *. 1000.
      in
      (* warm result cache: repeat through the full service *)
      let warm_full =
        let total = ref 0.0 in
        for _ = 1 to warm_rounds do
          total := !total +. (run q).Vamana_service.Service.total_time
        done;
        !total /. float_of_int warm_rounds *. 1000.
      in
      Printf.printf "%-4s %12.3f %14.3f %14.3f %9.1fx %9.1fx\n" label cold_ms warm_plan
        warm_full
        (cold_ms /. Float.max warm_plan 1e-6)
        (cold_ms /. Float.max warm_full 1e-6))
    queries;
  Printf.printf "(plan x: plan cache only — execution still runs; full x: result cache hit)\n";
  Printf.printf "\n%s" (Vamana_service.Service.snapshot_text service)

(* ---- interfere: result-cache invalidation policy under churn ---- *)

let print_interfere () =
  Printf.printf
    "\n== Result-cache invalidation under churn: doc-epoch vs footprint (2 MB) ==\n";
  let run_mode invalidation =
    let store = Store.create ~pool_pages:65536 () in
    let doc = Xmark.load store 2.0 in
    let service = Vamana_service.Service.create ~invalidation store in
    let elem q =
      match Vamana.Engine.query_doc store doc q with
      | Ok r -> List.hd r.Vamana.Engine.keys
      | Error e -> failwith e
    in
    let regions = elem "/site/regions" and people = elem "/site/people" in
    let hits = ref 0 and total = ref 0 in
    let run q =
      match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
      | Ok o -> (
          incr total;
          match o.Vamana_service.Service.result_cache with
          | `Hit -> incr hits
          | `Miss | `Stale | `Bypass -> ())
      | Error e -> failwith e
    in
    let qs = List.map snd queries in
    (* cold fill, then measure only the churned warm rounds *)
    List.iter run qs;
    hits := 0;
    total := 0;
    let rounds = 40 in
    for i = 1 to rounds do
      (* every round inserts an element no corpus query reads; every 8th
         also inserts a person, which several query footprints do read *)
      ignore (Store.insert_element store ~parent:regions "pad" [] None);
      if i mod 8 = 0 then
        ignore
          (Store.insert_element store ~parent:people "person"
             [ ("id", Printf.sprintf "churn%d" i) ]
             None);
      List.iter run qs
    done;
    let m = Vamana_service.Service.metrics service in
    let c = Vamana_service.Metrics.counter m in
    ( !hits,
      !total,
      c "result_cache_spared",
      c "cache_invalidations_footprint",
      c "cache_invalidations_epoch",
      c "cache_invalidations_top" )
  in
  let rate (h, t, _, _, _, _) = float_of_int h /. float_of_int t in
  let report name ((hits, total, spared, inv_fp, inv_ep, inv_top) as r) =
    Printf.printf
      "%-10s %4d/%d warm hits (%4.1f%%)   spared %3d   evicted: footprint %d, epoch %d, \
       top %d\n"
      name hits total
      (100. *. rate r)
      spared inv_fp inv_ep inv_top
  in
  let epoch = run_mode `Epoch in
  let fp = run_mode `Footprint in
  report "epoch" epoch;
  report "footprint" fp;
  Printf.printf
    "(single-document churn; footprint invalidation %s the doc-epoch hit rate)\n"
    (if rate fp > rate epoch then "beats" else "does NOT beat");
  rate fp > rate epoch

(* ---- drift: plan-health detection latency and post-replan recovery ---- *)

let print_drift () =
  Printf.printf
    "\n== Plan-health drift: detection latency and post-replan recovery (2 MB, sample 1/4) ==\n";
  let module H = Vamana_service.Health in
  let module Svc = Vamana_service.Service in
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 2.0 in
  let sample_every = 4 in
  (* result cache off: a served answer would hide the drifting plan *)
  let service = Svc.create ~result_cache_capacity:0 ~sample_every store in
  let run q =
    match Svc.query service ~context:doc.Store.doc_key q with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let record q =
    let norm = Svc.normalize q in
    List.find (fun r -> r.H.hr_query = norm) (H.records (Svc.health service))
  in
  let last_q r =
    match List.rev (H.samples r) with s :: _ -> s.H.s_max_q | [] -> 1.0
  in
  (* warm phase: every plan cached and sampled against honest statistics *)
  let warm_rounds = 8 in
  for _ = 1 to warm_rounds do
    List.iter (fun (_, q) -> run q) queries
  done;
  let base = List.map (fun (l, q) -> (l, last_q (record q))) queries in
  (* churn burst mid-serve: the staleness study's update workload — a
     Vermont population boom, and every watch deleted *)
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> failwith e
  in
  let boom = 2000 in
  for i = 1 to boom do
    let p =
      Store.insert_element store ~parent:people "person"
        [ ("id", Printf.sprintf "newcomer%d" i) ] None
    in
    let a = Store.insert_element store ~parent:p "address" [] None in
    ignore (Store.insert_element store ~parent:a "province" [] (Some "Vermont"))
  done;
  (match Vamana.Engine.query_doc store doc "//watches" with
  | Ok r -> List.iter (fun k -> ignore (Store.delete_subtree store k)) r.Vamana.Engine.keys
  | Error e -> failwith e);
  Printf.printf "churn: +%d Vermont persons, all watches deleted (epoch %d)\n" boom
    (Store.epoch store);
  (* keep serving; per plan, count executions from the churn burst to the
     drift event and to the transparent replan *)
  let churn_epoch = Store.epoch store in
  let execs_at_churn = List.map (fun (l, q) -> (l, (record q).H.hr_executions)) queries in
  let detect = ref [] and replan = ref [] in
  let note tbl l v = if not (List.mem_assoc l !tbl) then tbl := (l, v) :: !tbl in
  let max_rounds = 32 in
  for _round = 1 to max_rounds do
    List.iter
      (fun (l, q) ->
        run q;
        let r = record q in
        let since = r.H.hr_executions - List.assoc l execs_at_churn in
        if r.H.hr_stale || r.H.hr_replans > 0 then note detect l since;
        if r.H.hr_replans > 0 then note replan l since)
      queries
  done;
  let peak r =
    List.fold_left
      (fun acc (s : H.sample) ->
        if s.H.s_epoch >= churn_epoch then Float.max acc s.H.s_max_q else acc)
      1.0 (H.samples r)
  in
  Printf.printf
    "%-4s %-44s %8s %8s %12s %12s %8s %s\n" "Q" "query" "base q" "peak q" "detect(exec)"
    "replan(exec)" "post q" "recovered";
  List.iter
    (fun (l, q) ->
      let r = record q in
      let post = last_q r in
      let fmt_q v = if v >= 100.0 then Printf.sprintf "%8.0f" v else Printf.sprintf "%8.2f" v in
      Printf.printf "%-4s %-44s %s %s %12s %12s %s %s\n" l q
        (fmt_q (List.assoc l base))
        (fmt_q (peak r))
        (match List.assoc_opt l !detect with Some n -> string_of_int n | None -> "-")
        (match List.assoc_opt l !replan with Some n -> string_of_int n | None -> "-")
        (fmt_q post)
        (if r.H.hr_replans > 0 && post <= 1.5 then "yes"
         else if r.H.hr_replans > 0 then "partial"
         else "n/a"))
    queries;
  let m = Svc.metrics service in
  Printf.printf
    "(sampled %d of %d executions; %d drift events, %d adaptive replans;\n\
    \ detect/replan: plan executions between the churn burst and the event)\n"
    (Vamana_service.Metrics.counter m "sampled_executions")
    (Vamana_service.Metrics.counter m "queries")
    (Vamana_service.Metrics.counter m "plan_drift_events")
    (Vamana_service.Metrics.counter m "adaptive_replans")

(* ---- cost-model drift: estimated vs actual cardinality per query ---- *)

let qerror_file = "BENCH_qerror.json"

let print_qerror () =
  let mb = 2.0 in
  Printf.printf "\n== Cost-model q-error: estimated vs actual cardinality (%.0f MB) ==\n" mb;
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store mb in
  Printf.printf "%-4s %-44s %10s %10s %8s %10s\n" "Q" "query" "est OUT" "actual" "q-err" "max op q";
  let module J = Vamana.Profile.Json in
  let rows =
    List.map
      (fun (label, q) ->
        match Vamana.Engine.query ~profile:true store ~context:doc.Store.doc_key q with
        | Error e -> failwith (label ^ ": " ^ e)
        | Ok r ->
            let rep = Option.get r.Vamana.Engine.profile in
            let est =
              match rep.Vamana.Profile.plan.Vamana.Profile.est with
              | Some s -> s.Vamana.Cost.output
              | None -> 0
            in
            let actual = List.length r.Vamana.Engine.keys in
            let qe = rep.Vamana.Profile.root_q_error in
            let max_qe = rep.Vamana.Profile.max_q_error in
            Printf.printf "%-4s %-44s %10d %10d %8s %10s\n" label q est actual
              (if Float.is_finite qe then Printf.sprintf "%.3f" qe else "inf")
              (if Float.is_finite max_qe then Printf.sprintf "%.3f" max_qe else "inf");
            J.Obj
              [ ("label", J.Str label);
                ("query", J.Str q);
                ("estimated", J.Int est);
                ("actual", J.Int actual);
                ("q_error", if Float.is_finite qe then J.Float qe else J.Null);
                ("max_op_q_error", if Float.is_finite max_qe then J.Float max_qe else J.Null);
                ("execute_ms", J.Float (r.Vamana.Engine.execute_time *. 1000.)) ])
      queries
  in
  let json = J.Obj [ ("document_mb", J.Float mb); ("queries", J.Arr rows) ] in
  let oc = open_out qerror_file in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s — diff it across PRs to catch cost-model drift;\n\
                \ q-error = max(est/actual, actual/est), estimates are Table I upper bounds)\n"
    qerror_file

(* ---- regression gate: a committed baseline vs a fresh run ---- *)

let baseline_file = "BENCH_baseline.json"
let gate_mb = 2.0
let gate_rounds = 15

(* Latency is gated on each query's SHARE of the whole batch's latency,
   not on its absolute time: sub-millisecond wall timings on shared
   hardware drift by whole-process "modes" (frequency scaling, hugepage
   luck, neighbors) of up to 2x that no calibration constant tracks,
   but those modes scale every query alike and cancel out of the
   shares.  A plan or storage regression hits specific queries, moves
   their share, and trips the per-query threshold; a uniform slowdown
   of the entire engine is caught by the calibrated total-latency
   backstop at [gross_threshold]. *)
let latency_threshold = 1.5
let qerror_threshold = 1.5
let gross_threshold = 3.0

(* skip the share check for queries this fast at baseline time: timer
   noise dominates below ~50us and would make the gate flaky *)
let gate_min_ms = 0.05

(* Hardware calibration: the min-of-5 time of a fixed ALU loop, giving
   a stable per-host speed constant (observed spread well under 2% on a
   busy VM).  It feeds only the gross total-latency backstop below —
   per-query gating uses latency *shares*, which need no calibration. *)
let calibrate () =
  let work () =
    let acc = ref 0 in
    for i = 1 to 20_000_000 do
      acc := !acc lxor i
    done;
    Sys.opaque_identity !acc
  in
  let best = ref infinity in
  for _ = 1 to 5 do
    let _, t = time (fun () -> work ()) in
    if t < !best then best := t
  done;
  !best *. 1000.

type gate_row = {
  g_label : string;
  g_query : string;
  g_actual : int;
  g_qerror : float;  (* root q-error; [infinity] when an estimate hit zero *)
  g_exec_ms : float;  (* min-of-[gate_rounds] prepared execution *)
}

(* The query measurements come first and the calibration chase last:
   sub-millisecond B-tree timings are sensitive to heap layout, so both
   `baseline` and `regress` must run an identical allocation history up
   to the point of measurement (which also means regress may only read
   its baseline file AFTER measuring). *)
let measure_gate () =
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store gate_mb in
  let scope = Vamana.Engine.scope_of_context doc.Store.doc_key in
  (* the flight recorder runs for the whole measured batch — one
     begin/end record pair around every timed execution, exactly as the
     service writes them — so the gate numbers carry (and bound) the
     recorder's perturbation of the measured path *)
  let flight_dir = Filename.temp_file "vamana_bench_flight" "" in
  Sys.remove flight_dir;
  Unix.mkdir flight_dir 0o755;
  let flight = Storage.Flight.open_dir ~dir:flight_dir () in
  let rows =
    List.map
      (fun (label, q) ->
        match Vamana.Engine.prepare ~optimize:true store ~scope q with
        | Error e -> failwith (label ^ ": " ^ e)
        | Ok p ->
            let prof =
              Vamana.Engine.execute_prepared ~profile:true store
                ~context:doc.Store.doc_key p
            in
            let rep = Option.get prof.Vamana.Engine.profile in
            (* a compacted heap before each timing loop removes most of
               the run-to-run GC/layout variance between processes *)
            Gc.compact ();
            let best = ref infinity in
            for _ = 1 to gate_rounds do
              let qid = Obs.fresh_query_id () in
              Storage.Flight.record_begin flight ~qid ~epoch:(Store.epoch store) ~source:q;
              let r = Vamana.Engine.execute_prepared store ~context:doc.Store.doc_key p in
              Storage.Flight.record_end flight
                { Storage.Flight.qid; source = q; ok = true; cache = "bypass";
                  latency_us = int_of_float (r.Vamana.Engine.execute_time *. 1e6);
                  pages_read = r.Vamana.Engine.io.Storage.Stats.logical_reads;
                  physical_reads = r.Vamana.Engine.io.Storage.Stats.physical_reads;
                  wal_bytes = 0; fsyncs = 0;
                  results = List.length r.Vamana.Engine.keys;
                  epoch = Store.epoch store;
                  at_ms = int_of_float (Unix.gettimeofday () *. 1000.);
                  sampled = false; drift = 0.0 };
              if r.Vamana.Engine.execute_time < !best then best := r.Vamana.Engine.execute_time
            done;
            { g_label = label;
              g_query = q;
              g_actual = List.length prof.Vamana.Engine.keys;
              g_qerror = rep.Vamana.Profile.root_q_error;
              g_exec_ms = !best *. 1000. })
      queries
  in
  Storage.Flight.close flight;
  List.iter
    (fun f ->
      let p = Filename.concat flight_dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "flight.log"; "flight.log.1" ];
  (try Unix.rmdir flight_dir with Unix.Unix_error _ -> ());
  let cal = calibrate () in
  (cal, rows)

let print_baseline () =
  Printf.printf "\n== Bench baseline: %.0f MB document, min-of-%d latencies ==\n" gate_mb
    gate_rounds;
  let cal, rows = measure_gate () in
  Printf.printf "calibration: %.1f ms\n" cal;
  Printf.printf "%-4s %10s %8s %12s %12s\n" "Q" "actual" "q-err" "exec(ms)" "normalized";
  let module J = Vamana.Profile.Json in
  let json =
    J.Obj
      [ ("document_mb", J.Float gate_mb);
        ("calibration_ms", J.Float cal);
        ( "queries",
          J.Arr
            (List.map
               (fun r ->
                 Printf.printf "%-4s %10d %8s %12.3f %12.6f\n" r.g_label r.g_actual
                   (if Float.is_finite r.g_qerror then Printf.sprintf "%.3f" r.g_qerror
                    else "inf")
                   r.g_exec_ms (r.g_exec_ms /. cal);
                 J.Obj
                   [ ("label", J.Str r.g_label);
                     ("query", J.Str r.g_query);
                     ("actual", J.Int r.g_actual);
                     ( "q_error",
                       if Float.is_finite r.g_qerror then J.Float r.g_qerror else J.Null );
                     ("execute_ms", J.Float r.g_exec_ms) ])
               rows) ) ]
  in
  let oc = open_out baseline_file in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s — commit it; `bench regress` gates against it)\n" baseline_file

(* minimal JSON reader for the gate's own files: objects, arrays,
   strings, numbers, booleans, null — exactly what print_baseline emits *)
module Jin = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at byte %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string");
        let c = s.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then raise (Bad "dangling escape"));
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then raise (Bad "truncated \\u escape");
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* the gate only ever reads back ASCII it wrote itself *)
              Buffer.add_char buf (Char.chr (code land 0x7f))
          | _ -> raise (Bad "unknown escape"));
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else raise (Bad ("bad literal at byte " ^ string_of_int !pos))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> raise (Bad "expected ',' or '}'")
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> raise (Bad "expected ',' or ']'")
            in
            elems []
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ ->
          let start = !pos in
          while
            !pos < n
            && (match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            incr pos
          done;
          (try Num (float_of_string (String.sub s start (!pos - start)))
           with _ -> raise (Bad ("bad number at byte " ^ string_of_int start)))
      | None -> raise (Bad "unexpected end of input")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let num = function Some (Num f) -> Some f | _ -> None
  let str = function Some (Str s) -> Some s | _ -> None
  let int j = Option.map int_of_float (num j)
end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* [inject] multiplies the fresh latencies — `--inject-latency 2.0`
   fakes a 2x slowdown so CI can prove the gate actually trips.

   A gate that cannot run is a warning, not a verdict: a missing or
   malformed baseline (fresh clone, pruned artifact, schema drift) skips
   the gate with a SKIPPED banner and a zero exit, so only an actual
   measured regression can fail the build. *)
exception Gate_skip of string

let print_regress ~baseline ~inject =
  Printf.printf "\n== Bench regression gate: fresh run vs %s ==\n%!" baseline;
  (* measure before touching the baseline file — see measure_gate *)
  let cal, rows = measure_gate () in
  try
  let base =
    match Jin.parse (read_file baseline) with
    | j -> j
    | exception Sys_error msg ->
        raise
          (Gate_skip
             (Printf.sprintf "cannot read baseline: %s (run `bench baseline` and commit %s)"
                msg baseline_file))
    | exception Jin.Bad msg ->
        raise (Gate_skip (Printf.sprintf "cannot parse %s: %s" baseline msg))
  in
  let require what = function
    | Some v -> v
    | None -> raise (Gate_skip (Printf.sprintf "baseline is missing %s" what))
  in
  let base_cal = require "calibration_ms" (Jin.num (Jin.member "calibration_ms" base)) in
  let base_rows =
    match Jin.member "queries" base with
    | Some (Jin.Arr rows) -> rows
    | _ -> raise (Gate_skip "baseline is missing the queries array")
  in
  (* the committed q-error reference is optional context, not a gate
     input: absence only costs the fallback for baselines that predate
     per-row q_error fields *)
  let qerror_ref =
    if not (Sys.file_exists qerror_file) then begin
      Printf.printf "warning: %s not found — q-error fallback unavailable (run `bench qerror`)\n"
        qerror_file;
      []
    end
    else
      match Jin.parse (read_file qerror_file) with
      | exception Sys_error msg | exception Jin.Bad msg ->
          Printf.printf "warning: ignoring unreadable %s: %s\n" qerror_file msg;
          []
      | j -> ( match Jin.member "queries" j with Some (Jin.Arr rows) -> rows | _ -> [])
  in
  (* --inject-latency fakes a plan regression on the first query so CI
     can prove the gate trips; a uniform multiplier on every query would
     cancel out of the shares exactly like a frequency-scaling artifact *)
  let rows =
    match rows with
    | r :: rest when inject <> 1.0 -> { r with g_exec_ms = r.g_exec_ms *. inject } :: rest
    | rows -> rows
  in
  Printf.printf "calibration: baseline %.1f ms, this host %.1f ms" base_cal cal;
  if inject <> 1.0 then
    Printf.printf "  [injected %.2fx latency on %s]" inject
      (match rows with r :: _ -> r.g_label | [] -> "-");
  print_newline ();
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> problems := msg :: !problems) fmt in
  (* pair each fresh row with its baseline row up front: the shares must
     be taken over exactly the queries present on both sides *)
  let paired =
    List.filter_map
      (fun r ->
        match
          List.find_opt
            (fun row -> Jin.str (Jin.member "label" row) = Some r.g_label)
            base_rows
        with
        | None ->
            fail "%s: not present in baseline (re-run `bench baseline`)" r.g_label;
            None
        | Some b -> (
            (* a row with missing fields is warned out of the batch, not
               fatal: the shares are taken over the rows that remain *)
            match (Jin.num (Jin.member "execute_ms" b), Jin.int (Jin.member "actual" b)) with
            | Some b_ms, Some b_actual ->
                let b_q =
                  match Jin.member "q_error" b with
                  | Some (Jin.Num f) -> f
                  | _ -> (
                      (* baselines predating per-row q_error: fall back to
                         the committed q-error reference file *)
                      match
                        List.find_opt
                          (fun row -> Jin.str (Jin.member "label" row) = Some r.g_label)
                          qerror_ref
                      with
                      | Some row -> (
                          match Jin.member "q_error" row with
                          | Some (Jin.Num f) -> f
                          | _ -> infinity)
                      | None -> infinity)
                in
                Some (r, b_ms, b_actual, b_q)
            | _ ->
                Printf.printf "warning: baseline row %s lacks execute_ms/actual — skipped\n"
                  r.g_label;
                None))
      rows
  in
  let base_total = List.fold_left (fun a (_, b_ms, _, _) -> a +. b_ms) 0.0 paired in
  let now_total = List.fold_left (fun a (r, _, _, _) -> a +. r.g_exec_ms) 0.0 paired in
  let gross = now_total /. cal /. (base_total /. base_cal) in
  Printf.printf "batch total: baseline %.3f ms, now %.3f ms (normalized %.2fx)\n" base_total
    now_total gross;
  Printf.printf "%-4s %10s %10s %7s | %8s %8s %7s | %10s %10s\n" "Q" "base(ms)" "now(ms)"
    "share" "base q" "now q" "ratio" "base rows" "now rows";
  List.iter
    (fun (r, b_ms, b_actual, b_q) ->
      let share_ratio = r.g_exec_ms /. now_total /. (b_ms /. base_total) in
      let q_ratio =
        if Float.is_finite b_q && Float.is_finite r.g_qerror then r.g_qerror /. b_q
        else if Float.is_finite b_q then infinity (* finite -> inf: drifted *)
        else 1.0 (* baseline already inf: can't get worse *)
      in
      let pq f = if Float.is_finite f then Printf.sprintf "%.3f" f else "inf" in
      Printf.printf "%-4s %10.3f %10.3f %6.2fx | %8s %8s %6s | %10d %10d\n" r.g_label b_ms
        r.g_exec_ms share_ratio (pq b_q) (pq r.g_qerror)
        (if Float.is_finite q_ratio then Printf.sprintf "%.2fx" q_ratio else "inf")
        b_actual r.g_actual;
      if r.g_actual <> b_actual then
        fail "%s: result cardinality changed %d -> %d (wrong answers, not a slowdown)"
          r.g_label b_actual r.g_actual;
      if b_ms >= gate_min_ms && share_ratio > latency_threshold then
        fail "%s: latency share of the batch grew %.2fx over baseline (threshold %.2fx)"
          r.g_label share_ratio latency_threshold;
      if q_ratio > qerror_threshold then
        fail "%s: q-error grew %s -> %s (threshold %.2fx)" r.g_label (pq b_q) (pq r.g_qerror)
          qerror_threshold)
    paired;
  if gross > gross_threshold then
    fail "whole batch: normalized total latency %.2fx over baseline (threshold %.2fx)" gross
      gross_threshold;
  (match List.rev !problems with
  | [] ->
      Printf.printf
        "gate PASSED: latency shares within %.2fx, q-error within %.2fx, cardinalities exact\n"
        latency_threshold qerror_threshold;
      false
  | ps ->
      Printf.printf "gate FAILED:\n";
      List.iter (Printf.printf "  REGRESSION %s\n") ps;
      true)
  with Gate_skip msg ->
    Printf.printf "gate SKIPPED: %s\n" msg;
    false

(* ---- Bechamel micro-benchmarks: one Test per figure ---- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n== Bechamel micro-benchmarks (0.5 MB document, optimized plans) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 0.5 in
  let test_of (label, q) =
    let fig = List.assoc label figure_of_query in
    Test.make
      ~name:(Printf.sprintf "fig%d_%s" fig label)
      (Staged.stage (fun () ->
           match Vamana.Engine.query store ~context:doc.Store.doc_key q with
           | Ok r -> ignore r.Vamana.Engine.keys
           | Error e -> failwith e))
  in
  let tests = Test.make_grouped ~name:"figures" (List.map test_of queries) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est = match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> Float.nan in
      Printf.printf "%-24s %12.1f us/query  (r2 %s)\n" name (est /. 1000.)
        (match Analyze.OLS.r_square r with Some r2 -> Printf.sprintf "%.4f" r2 | None -> "-"))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ---- driver ---- *)

let default_sizes = [ 1.0; 2.0; 5.0; 10.0 ]
let full_sizes = [ 1.0; 5.0; 10.0; 20.0; 30.0 ]
let parse_sizes s = List.map float_of_string (String.split_on_char ',' s)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let sizes = ref default_sizes in
  let commands = ref [] in
  let baseline = ref baseline_file in
  let inject = ref 1.0 in
  let rec parse = function
    | "--sizes" :: v :: rest ->
        sizes := parse_sizes v;
        parse rest
    | "--full" :: rest ->
        sizes := full_sizes;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := v;
        parse rest
    | "--inject-latency" :: v :: rest ->
        inject := float_of_string v;
        parse rest
    | cmd :: rest ->
        commands := cmd :: !commands;
        parse rest
    | [] -> ()
  in
  parse args;
  let commands = match List.rev !commands with [] -> [ "all" ] | cs -> cs in
  let want c = List.mem c commands || List.mem "all" commands in
  let fig_requested =
    List.mem "all" commands
    || List.mem "figs" commands
    || List.exists
         (fun (l, _) -> List.mem (Printf.sprintf "fig%d" (List.assoc l figure_of_query)) commands)
         queries
  in
  Printf.printf "VAMANA benchmark harness — sizes: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "%.0fMB") !sizes));
  if want "cost" then print_cost ();
  if want "opt" then print_opt ();
  if fig_requested then begin
    Printf.printf "\nbuilding documents...\n%!";
    let sizeds =
      List.map
        (fun mb ->
          let s, t = time (fun () -> build_sized mb) in
          Printf.printf "  %.0f MB: %d records (%.1fs)\n%!" mb (Store.total_records s.store) t;
          s)
        !sizes
    in
    List.iter
      (fun (label, q) ->
        let fig = Printf.sprintf "fig%d" (List.assoc label figure_of_query) in
        if want fig || List.mem "figs" commands then print_figure sizeds (label, q))
      queries
  end;
  if want "overhead" then print_overhead ();
  if want "ablation" then print_ablation ();
  if want "io" then print_io ();
  (* disk builds real on-disk stores per size: opt-in like the gate
     commands, never part of `all` *)
  if List.mem "disk" commands then print_disk !sizes;
  if want "staleness" then print_staleness ();
  if want "service" then print_service ();
  (* drift churns a live service mid-run: opt-in like the gate commands *)
  if List.mem "drift" commands then print_drift ();
  (* interfere is a gate: exit non-zero if footprint invalidation does
     not beat doc-epoch invalidation under churn *)
  let interfere_lost = List.mem "interfere" commands && not (print_interfere ()) in
  if interfere_lost then begin
    Printf.printf "\ninterfere gate FAILED.\n";
    exit 1
  end;
  if want "qerror" then print_qerror ();
  if want "micro" then micro ();
  (* the gate commands are opt-in: never part of `all` (regress is a CI
     verdict, baseline rewrites a committed file) *)
  if List.mem "baseline" commands then print_baseline ();
  let regressed =
    List.mem "regress" commands && print_regress ~baseline:!baseline ~inject:!inject
  in
  Printf.printf "\ndone.\n";
  if regressed then exit 1
