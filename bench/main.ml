(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VIII).

     dune exec bench/main.exe                 -- everything, default sizes
     dune exec bench/main.exe -- fig12        -- one figure (fig12..fig16)
     dune exec bench/main.exe -- cost         -- Figures 6 and 7 (cost annotations)
     dune exec bench/main.exe -- opt          -- Figures 5, 8, 9, 11 (optimizer traces)
     dune exec bench/main.exe -- overhead     -- §VIII optimization-overhead claim
     dune exec bench/main.exe -- ablation     -- per-rewrite-rule contribution
     dune exec bench/main.exe -- io           -- page reads per engine (index-only property)
     dune exec bench/main.exe -- staleness    -- live statistics vs a frozen dictionary
     dune exec bench/main.exe -- service      -- warm-vs-cold cache latency (service layer)
     dune exec bench/main.exe -- qerror       -- est-vs-actual cardinality -> BENCH_qerror.json
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- all --sizes 1,5,10,20,30   -- full sweep

   Engines (stand-ins per DESIGN.md §4):
     scan    sequential-scan evaluator   (Galax)
     dom     DOM traversal, parse+build charged per query (Jaxen)
     join    structural path-join engine (eXist)
     vqp     VAMANA default plan
     vqp-opt VAMANA optimized plan

   Engine drop-outs mirror the paper: the DOM engine refuses documents
   above its node budget (Jaxen >= 10 MB), the join engine refuses
   documents above its record cap (eXist >= 20 MB) and has no sibling /
   following / preceding axes (no Q4 data points), and the scan engine is
   given a wall-clock budget per query (the paper's two-hour cutoff,
   scaled down). *)

module Store = Mass.Store

let queries =
  [ ("Q1", "//person/address");
    ("Q2", "//watches/watch/ancestor::person");
    ("Q3", "/descendant::name/parent::*/self::person/address");
    ("Q4", "//itemref/following-sibling::price/parent::*");
    ("Q5", "//province[text()='Vermont']/ancestor::person") ]

let figure_of_query = [ ("Q1", 12); ("Q2", 13); ("Q3", 14); ("Q4", 15); ("Q5", 16) ]

(* caps mirroring the paper's reported limits, in generated-document
   terms: ~13k records per generated MB *)
let dom_node_budget = 130_000 (* Jaxen: fails >= 10 MB *)
let join_record_cap = 260_000 (* eXist: fails >= 20 MB *)
let scan_time_budget = 120.0 (* seconds; the paper's 2 h cutoff, scaled *)

type sized = {
  mb : float;
  store : Store.t;
  doc : Store.doc;
  source : string;
}

let build_sized mb =
  let store = Store.create ~pool_pages:65536 () in
  let tree = Xmark.generate mb in
  let doc = Store.load store ~name:"auction.xml" tree in
  { mb; store; doc; source = Xml.Writer.to_string tree }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* very fast runs are repeated for a stable reading *)
let measure f =
  let r, t = time f in
  if t >= 0.05 then (r, t)
  else begin
    let n = 9 in
    let _, total =
      time (fun () ->
          for _ = 1 to n do
            ignore (f ())
          done)
    in
    (r, (t +. total) /. float_of_int (n + 1))
  end

type cell = Time of float | Dnf of string

let pp_cell = function
  | Time t -> Printf.sprintf "%10.3f" t
  | Dnf reason -> Printf.sprintf "%10s" ("DNF:" ^ reason)

(* ---- engine runners ---- *)

let run_scan sized query =
  let scan = Baselines.Scan_engine.create sized.store sized.doc in
  let deadline = Unix.gettimeofday () +. scan_time_budget in
  let result, t = time (fun () -> Baselines.Scan_engine.query_ranks scan query) in
  match result with
  | Ok _ when Unix.gettimeofday () <= deadline -> Time t
  | Ok _ -> Dnf "time"
  | Error _ -> Dnf "unsup"

let run_dom sized query =
  (* a file-based DOM engine pays parse + DOM build on every query *)
  match
    measure (fun () ->
        let d =
          Baselines.Dom_engine.create ~node_budget:dom_node_budget
            (Xml.Parser.parse sized.source)
        in
        Baselines.Dom_engine.query_ranks d query)
  with
  | Ok _, t -> Time t
  | Error _, _ -> Dnf "unsup"
  | exception Baselines.Dom_engine.Document_too_large _ -> Dnf "mem"

let run_join sized query =
  match Baselines.Join_engine.create ~record_cap:join_record_cap sized.store sized.doc with
  | exception Baselines.Join_engine.Document_too_large _ -> Dnf "size"
  | join -> (
      match measure (fun () -> Baselines.Join_engine.query_ranks join query) with
      | Ok _, t -> Time t
      | Error _, _ -> Dnf "axis")

let run_vamana ~optimize sized query =
  match
    measure (fun () ->
        Vamana.Engine.query ~optimize sized.store ~context:sized.doc.Store.doc_key query)
  with
  | Ok _, t -> Time t
  | Error e, _ -> Dnf e

let engines =
  [ ("scan", run_scan); ("dom", run_dom); ("join", run_join);
    ("vqp", run_vamana ~optimize:false); ("vqp-opt", run_vamana ~optimize:true) ]

let engine_index name =
  let rec go i = function
    | (n, _) :: rest -> if String.equal n name then i else go (i + 1) rest
    | [] -> invalid_arg name
  in
  go 0 engines

(* ---- figures 12-16 ---- *)

let print_figure sizeds (label, query) =
  let fig = List.assoc label figure_of_query in
  Printf.printf "\n== Figure %d: %s  %s — execution time (seconds) ==\n" fig label query;
  Printf.printf "%8s" "size(MB)";
  List.iter (fun (name, _) -> Printf.printf "%11s" name) engines;
  print_newline ();
  let rows =
    List.map
      (fun sized ->
        let cells = List.map (fun (_, runner) -> runner sized query) engines in
        Printf.printf "%8.0f" sized.mb;
        List.iter (fun c -> Printf.printf " %s" (pp_cell c)) cells;
        print_newline ();
        (sized.mb, cells))
      sizeds
  in
  (* shape checks against the paper *)
  let get name cells = List.nth cells (engine_index name) in
  let problems = ref [] in
  List.iter
    (fun (mb, cells) ->
      (match (get "vqp" cells, get "vqp-opt" cells) with
      | Time a, Time b when b > a +. 1e-4 ->
          problems := Printf.sprintf "%.0fMB: VQP-OPT slower than VQP" mb :: !problems
      | _ -> ());
      match (get "vqp-opt" cells, get "scan" cells, get "dom" cells) with
      | Time v, Time s, Time d when v > s || v > d ->
          problems := Printf.sprintf "%.0fMB: VAMANA-OPT not fastest" mb :: !problems
      | _ -> ())
    rows;
  if label = "Q4" then begin
    let all_dnf =
      List.for_all
        (fun (_, cells) -> match get "join" cells with Dnf _ -> true | Time _ -> false)
        rows
    in
    if not all_dnf then
      problems := "Q4: join engine unexpectedly ran a sibling axis" :: !problems
  end;
  match !problems with
  | [] ->
      Printf.printf "   [shape OK: VQP-OPT <= VQP; index plans fastest%s]\n"
        (if label = "Q4" then "; join engine DNF on sibling axis as in the paper" else "")
  | ps -> List.iter (Printf.printf "   [shape WARNING: %s]\n") ps

(* ---- cost figures (6 and 7) ---- *)

let print_cost () =
  Printf.printf "\n== Figures 6 & 7: cost annotations on the 10 MB document ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  let count n = Store.count_test store ~principal:Mass.Record.Element (Xpath.Ast.Name_test n) in
  Printf.printf "paper: COUNT(name)=4825 COUNT(person)=2550 COUNT(address)=1256 TC('Yung Flach')=1\n";
  Printf.printf "ours : COUNT(name)=%d COUNT(person)=%d COUNT(address)=%d TC('Yung Flach')=%d\n\n"
    (count "name") (count "person") (count "address")
    (Store.text_value_count store "Yung Flach");
  List.iter
    (fun (fig, q) ->
      Printf.printf "-- %s --\nQuery: %s\n" fig q;
      match Vamana.Engine.explain store doc q with
      | Ok text -> print_string text
      | Error e -> Printf.printf "error: %s\n" e)
    [ ("Figure 6 (running example Q1)", "descendant::name/parent::*/self::person/address");
      ("Figure 7 (running example Q2)",
       "//name[text()='Yung Flach']/following-sibling::emailaddress") ]

(* ---- optimizer traces (figures 5, 8, 9, 11) ---- *)

let print_opt () =
  Printf.printf "\n== Figures 5, 8, 9, 11: optimizer transformations (10 MB document) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  List.iter
    (fun (what, q) ->
      Printf.printf "\n-- %s --\nQuery: %s\n" what q;
      match Vamana.Engine.explain store doc q with
      | Ok text -> print_string text
      | Error e -> Printf.printf "error: %s\n" e)
    [ ("Figures 5+8+11: clean-up, reverse-axis elimination, push-down",
       "descendant::name/parent::*/self::person/address");
      ("Figure 9: value-index rewrite",
       "//name[text()='Yung Flach']/following-sibling::emailaddress");
      ("§VIII Q2: duplicate elimination", "//watches/watch/ancestor::person") ]

(* ---- optimization overhead (§VIII: "negligible") ---- *)

let print_overhead () =
  Printf.printf "\n== Optimization overhead on the 10 MB document (paper §VIII) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  Printf.printf "%-4s %12s %14s %14s %10s %10s\n" "Q" "opt(ms)" "exec VQP(ms)" "exec OPT(ms)"
    "speedup" "ovh(%)";
  List.iter
    (fun (label, q) ->
      let run optimize =
        match Vamana.Engine.query ~optimize store ~context:doc.Store.doc_key q with
        | Ok r -> r
        | Error e -> failwith e
      in
      let d = run false and o = run true in
      let speedup = d.Vamana.Engine.execute_time /. Float.max o.Vamana.Engine.execute_time 1e-9 in
      let overhead =
        100. *. o.Vamana.Engine.optimize_time /. Float.max d.Vamana.Engine.execute_time 1e-9
      in
      Printf.printf "%-4s %12.3f %14.2f %14.2f %9.1fx %10.2f\n" label
        (o.Vamana.Engine.optimize_time *. 1000.)
        (d.Vamana.Engine.execute_time *. 1000.)
        (o.Vamana.Engine.execute_time *. 1000.)
        speedup overhead)
    queries;
  Printf.printf "(overhead = optimizer time as %% of default-plan execution time)\n"


(* ---- ablation: contribution of each transformation rule ---- *)

let print_ablation () =
  Printf.printf "\n== Ablation: optimizer with one rule disabled (10 MB, exec ms) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  let variants =
    ("full library", Vamana.Rewrite.cost_rules)
    :: ("no rewriting", [])
    :: List.map
         (fun (r : Vamana.Rewrite.rule) ->
           ( "without " ^ r.Vamana.Rewrite.name,
             List.filter
               (fun (r' : Vamana.Rewrite.rule) ->
                 r'.Vamana.Rewrite.name <> r.Vamana.Rewrite.name)
               Vamana.Rewrite.cost_rules ))
         Vamana.Rewrite.cost_rules
  in
  Printf.printf "%-26s" "variant";
  List.iter (fun (l, _) -> Printf.printf "%10s" l) queries;
  print_newline ();
  List.iter
    (fun (vname, rules) ->
      Printf.printf "%-26s" vname;
      List.iter
        (fun (_, q) ->
          let plan =
            match Vamana.Compile.compile_query q with Ok p -> p | Error e -> failwith e
          in
          let o = Vamana.Optimizer.optimize ~rules store ~scope:(Some doc.Store.doc_key) plan in
          let _, t =
            measure (fun () -> Vamana.Exec.run store ~context:doc.Store.doc_key o.Vamana.Optimizer.plan)
          in
          Printf.printf "%10.2f" (t *. 1000.))
        queries;
      print_newline ())
    variants;
  Printf.printf "(each cell: execution time of the plan produced by that rule set)\n"

(* ---- page I/O: the index-only property, quantified ---- *)

let print_io () =
  Printf.printf "\n== Page reads per engine on the 10 MB document (logical reads) ==\n";
  let sized = build_sized 10.0 in
  let total = Store.total_records sized.store in
  Printf.printf "store: %d records, %d pages\n" total
    ((Store.statistics sized.store).Store.doc_index_pages);
  Printf.printf "%-4s %12s %12s %12s %12s\n" "Q" "scan" "join" "vqp" "vqp-opt";
  List.iter
    (fun (label, q) ->
      let reads f =
        Store.reset_io_stats sized.store;
        match f () with
        | Ok _ -> Printf.sprintf "%d" (Store.io_stats sized.store).Storage.Stats.logical_reads
        | Error _ -> "DNF"
      in
      let scan_reads =
        reads (fun () ->
            Baselines.Scan_engine.query_ranks (Baselines.Scan_engine.create sized.store sized.doc) q)
      in
      let join_reads =
        reads (fun () ->
            Baselines.Join_engine.query_ranks
              (Baselines.Join_engine.create ~record_cap:max_int sized.store sized.doc)
              q)
      in
      let vqp_reads =
        reads (fun () -> Vamana.Engine.query ~optimize:false sized.store ~context:sized.doc.Store.doc_key q)
      in
      let opt_reads =
        reads (fun () -> Vamana.Engine.query ~optimize:true sized.store ~context:sized.doc.Store.doc_key q)
      in
      Printf.printf "%-4s %12s %12s %12s %12s\n" label scan_reads join_reads vqp_reads opt_reads)
    queries;
  Printf.printf
    "(optimized index-only plans touch a small fraction of the pages a scan reads)\n"


(* ---- staleness study: live index statistics vs a frozen dictionary ---- *)

let print_staleness () =
  Printf.printf "\n== Staleness: live index statistics vs a frozen dictionary (paper §I/§II) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 2.0 in
  let frozen = Vamana.Frozen_stats.capture store in
  Printf.printf "captured dictionary: %d names, %d values\n"
    (Vamana.Frozen_stats.distinct_names frozen)
    (Vamana.Frozen_stats.distinct_values frozen);
  (* update workload: a Vermont population boom, and every watch removed *)
  let people =
    match Vamana.Engine.query_doc store doc "/site/people" with
    | Ok r -> List.hd r.Vamana.Engine.keys
    | Error e -> failwith e
  in
  let boom = 2000 in
  for i = 1 to boom do
    let p =
      Store.insert_element store ~parent:people "person"
        [ ("id", Printf.sprintf "newcomer%d" i) ] None
    in
    let a = Store.insert_element store ~parent:p "address" [] None in
    ignore (Store.insert_element store ~parent:a "province" [] (Some "Vermont"))
  done;
  (match Vamana.Engine.query_doc store doc "//watches" with
  | Ok r -> List.iter (fun k -> ignore (Store.delete_subtree store k)) r.Vamana.Engine.keys
  | Error e -> failwith e);
  Printf.printf "applied updates: +%d Vermont persons, all watches deleted\n\n" boom;
  let live = Vamana.Cost.live_statistics store in
  let stale = Vamana.Frozen_stats.source frozen in
  let scope = Some doc.Store.doc_key in
  Printf.printf "%-44s %10s %10s %10s\n" "query" "stale est" "live est" "actual";
  List.iter
    (fun q ->
      match Vamana.Compile.compile_query q with
      | Error e -> failwith e
      | Ok plan ->
          let plan = Vamana.Rewrite.apply_cleanup plan in
          let est stats =
            let costed = Vamana.Cost.estimate_with stats ~scope plan in
            (Hashtbl.find costed plan.Vamana.Plan.id).Vamana.Cost.output
          in
          let actual =
            List.length (Vamana.Exec.run store ~context:doc.Store.doc_key plan)
          in
          Printf.printf "%-44s %10d %10d %10d\n" q (est stale) (est live) actual)
    [ "//province[text()='Vermont']"; "//watches/watch"; "//person"; "//address" ];
  Printf.printf
    "(the live source tracks every update exactly; the dictionary keeps\n\
    \ pre-update numbers, the failure mode the paper's costing avoids)\n"

(* ---- service layer: warm-vs-cold cache latency ---- *)

let print_service () =
  Printf.printf "\n== Service layer: warm vs cold cache latency (10 MB, XMark query set) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 10.0 in
  let service = Vamana_service.Service.create store in
  let run q =
    match Vamana_service.Service.query service ~context:doc.Store.doc_key q with
    | Ok o -> o
    | Error e -> failwith e
  in
  let warm_rounds = 25 in
  Printf.printf "%-4s %12s %14s %14s %10s %10s\n" "Q" "cold(ms)" "warm plan(ms)" "warm full(ms)"
    "plan x" "full x";
  List.iter
    (fun (label, q) ->
      (* cold: first touch pays parse+compile+optimize+execute *)
      let cold = run q in
      let cold_ms = cold.Vamana_service.Service.total_time *. 1000. in
      (* warm plan cache only: re-execute the cached plan each round by
         disabling result reuse through a store-epoch-preserving flush of
         the result side — simplest is a second service without results *)
      let plan_service =
        Vamana_service.Service.create ~result_cache_capacity:0 store
      in
      let run_plan () =
        match Vamana_service.Service.query plan_service ~context:doc.Store.doc_key q with
        | Ok o -> o.Vamana_service.Service.total_time
        | Error e -> failwith e
      in
      let _cold_plan = run_plan () in
      let warm_plan =
        let total = ref 0.0 in
        for _ = 1 to warm_rounds do
          total := !total +. run_plan ()
        done;
        !total /. float_of_int warm_rounds *. 1000.
      in
      (* warm result cache: repeat through the full service *)
      let warm_full =
        let total = ref 0.0 in
        for _ = 1 to warm_rounds do
          total := !total +. (run q).Vamana_service.Service.total_time
        done;
        !total /. float_of_int warm_rounds *. 1000.
      in
      Printf.printf "%-4s %12.3f %14.3f %14.3f %9.1fx %9.1fx\n" label cold_ms warm_plan
        warm_full
        (cold_ms /. Float.max warm_plan 1e-6)
        (cold_ms /. Float.max warm_full 1e-6))
    queries;
  Printf.printf "(plan x: plan cache only — execution still runs; full x: result cache hit)\n";
  Printf.printf "\n%s" (Vamana_service.Service.snapshot_text service)

(* ---- cost-model drift: estimated vs actual cardinality per query ---- *)

let qerror_file = "BENCH_qerror.json"

let print_qerror () =
  let mb = 2.0 in
  Printf.printf "\n== Cost-model q-error: estimated vs actual cardinality (%.0f MB) ==\n" mb;
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store mb in
  Printf.printf "%-4s %-44s %10s %10s %8s %10s\n" "Q" "query" "est OUT" "actual" "q-err" "max op q";
  let module J = Vamana.Profile.Json in
  let rows =
    List.map
      (fun (label, q) ->
        match Vamana.Engine.query ~profile:true store ~context:doc.Store.doc_key q with
        | Error e -> failwith (label ^ ": " ^ e)
        | Ok r ->
            let rep = Option.get r.Vamana.Engine.profile in
            let est =
              match rep.Vamana.Profile.plan.Vamana.Profile.est with
              | Some s -> s.Vamana.Cost.output
              | None -> 0
            in
            let actual = List.length r.Vamana.Engine.keys in
            let qe = rep.Vamana.Profile.root_q_error in
            let max_qe = rep.Vamana.Profile.max_q_error in
            Printf.printf "%-4s %-44s %10d %10d %8s %10s\n" label q est actual
              (if Float.is_finite qe then Printf.sprintf "%.3f" qe else "inf")
              (if Float.is_finite max_qe then Printf.sprintf "%.3f" max_qe else "inf");
            J.Obj
              [ ("label", J.Str label);
                ("query", J.Str q);
                ("estimated", J.Int est);
                ("actual", J.Int actual);
                ("q_error", if Float.is_finite qe then J.Float qe else J.Null);
                ("max_op_q_error", if Float.is_finite max_qe then J.Float max_qe else J.Null);
                ("execute_ms", J.Float (r.Vamana.Engine.execute_time *. 1000.)) ])
      queries
  in
  let json = J.Obj [ ("document_mb", J.Float mb); ("queries", J.Arr rows) ] in
  let oc = open_out qerror_file in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s — diff it across PRs to catch cost-model drift;\n\
                \ q-error = max(est/actual, actual/est), estimates are Table I upper bounds)\n"
    qerror_file

(* ---- Bechamel micro-benchmarks: one Test per figure ---- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n== Bechamel micro-benchmarks (0.5 MB document, optimized plans) ==\n";
  let store = Store.create ~pool_pages:65536 () in
  let doc = Xmark.load store 0.5 in
  let test_of (label, q) =
    let fig = List.assoc label figure_of_query in
    Test.make
      ~name:(Printf.sprintf "fig%d_%s" fig label)
      (Staged.stage (fun () ->
           match Vamana.Engine.query store ~context:doc.Store.doc_key q with
           | Ok r -> ignore r.Vamana.Engine.keys
           | Error e -> failwith e))
  in
  let tests = Test.make_grouped ~name:"figures" (List.map test_of queries) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let est = match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> Float.nan in
      Printf.printf "%-24s %12.1f us/query  (r2 %s)\n" name (est /. 1000.)
        (match Analyze.OLS.r_square r with Some r2 -> Printf.sprintf "%.4f" r2 | None -> "-"))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ---- driver ---- *)

let default_sizes = [ 1.0; 2.0; 5.0; 10.0 ]
let full_sizes = [ 1.0; 5.0; 10.0; 20.0; 30.0 ]
let parse_sizes s = List.map float_of_string (String.split_on_char ',' s)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let sizes = ref default_sizes in
  let commands = ref [] in
  let rec parse = function
    | "--sizes" :: v :: rest ->
        sizes := parse_sizes v;
        parse rest
    | "--full" :: rest ->
        sizes := full_sizes;
        parse rest
    | cmd :: rest ->
        commands := cmd :: !commands;
        parse rest
    | [] -> ()
  in
  parse args;
  let commands = match List.rev !commands with [] -> [ "all" ] | cs -> cs in
  let want c = List.mem c commands || List.mem "all" commands in
  let fig_requested =
    List.mem "all" commands
    || List.mem "figs" commands
    || List.exists
         (fun (l, _) -> List.mem (Printf.sprintf "fig%d" (List.assoc l figure_of_query)) commands)
         queries
  in
  Printf.printf "VAMANA benchmark harness — sizes: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "%.0fMB") !sizes));
  if want "cost" then print_cost ();
  if want "opt" then print_opt ();
  if fig_requested then begin
    Printf.printf "\nbuilding documents...\n%!";
    let sizeds =
      List.map
        (fun mb ->
          let s, t = time (fun () -> build_sized mb) in
          Printf.printf "  %.0f MB: %d records (%.1fs)\n%!" mb (Store.total_records s.store) t;
          s)
        !sizes
    in
    List.iter
      (fun (label, q) ->
        let fig = Printf.sprintf "fig%d" (List.assoc label figure_of_query) in
        if want fig || List.mem "figs" commands then print_figure sizeds (label, q))
      queries
  end;
  if want "overhead" then print_overhead ();
  if want "ablation" then print_ablation ();
  if want "io" then print_io ();
  if want "staleness" then print_staleness ();
  if want "service" then print_service ();
  if want "qerror" then print_qerror ();
  if want "micro" then micro ();
  Printf.printf "\ndone.\n"
